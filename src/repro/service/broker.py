"""Filesystem-backed shared job queue with leases.

The broker is a directory; every mutation is an atomic filesystem
operation, so any number of worker processes (and the ``repro serve``
front-end) can share it without a coordinator:

* **enqueue** — a pending cell is one ``queue/<key>.json`` file
  (atomic tmp+rename write), keyed by the cell's content-addressed
  cache key, so enqueueing the same cell twice is naturally collapsed;
* **claim** — a worker takes a cell by ``os.rename``-ing it from
  ``queue/`` to ``active/``: rename is atomic, exactly one claimant
  wins, losers see ``FileNotFoundError`` and move on;
* **heartbeat** — the lease is alive while the worker keeps touching
  the ``active/`` file's mtime; a worker that dies simply stops;
* **reap** — anyone may sweep ``active/`` for leases whose mtime has
  fallen ``lease_ttl`` behind and rename them back to ``queue/``
  (again atomic — the expired cell is requeued *exactly once* however
  many reapers race).  A cell that keeps losing its lease moves to
  ``failed/`` after ``max_requeues`` with a synthetic ``LeaseExpired``
  failure instead of looping forever;
* **complete** — the worker publishes the ``CaseResult`` into the
  shared content-addressed :class:`~repro.experiments.sweep.ResultCache`
  namespace and stamps a ``done/<key>.json`` marker created with
  ``O_EXCL`` — a duplicate completion (a slow worker finishing a cell
  that was requeued and re-finished) is a structural no-op: the cache
  write is byte-identical by construction and the marker creation
  simply loses the race;
* **events** — every transition appends one NDJSON line to
  ``events.jsonl`` (single ``O_APPEND`` writes), the progress stream
  ``repro serve`` tails.

Nothing here interprets a result: the broker moves opaque job specs
(:func:`repro.service.api.job_to_spec`) and accounts for their state.
See ``docs/service.md`` for the on-disk layout and protocol.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.experiments.sweep import ResultCache, SimJob

__all__ = ["FsBroker", "Lease", "default_worker_id"]

#: lease requeues tolerated before a cell is declared lost.
DEFAULT_MAX_REQUEUES = 3


def default_worker_id() -> str:
    """``<host>-<pid>``: stable for a worker process's lifetime, unique
    enough across a small fleet, and meaningful in manifests."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class Lease:
    """One claimed cell: the spec to run plus lease bookkeeping."""

    key: str
    spec: Dict[str, Any]
    worker: str
    #: 1-based delivery attempt (grows on every lease-expiry requeue).
    attempt: int = 1
    #: seconds of heartbeat silence before the lease expires.
    ttl: float = 60.0


@dataclass
class RunRecord:
    """One submitted experiment: the cells it expands to."""

    id: str
    experiment: str
    created: float
    keys: List[str] = field(default_factory=list)
    labels: Dict[str, str] = field(default_factory=dict)
    #: cells satisfied straight from the cache at submit time.
    cached: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "experiment": self.experiment,
            "created": self.created,
            "keys": self.keys,
            "labels": self.labels,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(
            id=data["id"],
            experiment=data.get("experiment", "?"),
            created=float(data.get("created", 0.0)),
            keys=list(data.get("keys", ())),
            labels=dict(data.get("labels", {})),
            cached=list(data.get("cached", ())),
        )


def _write_atomic(path: Path, payload: Dict[str, Any]) -> None:
    tmp = path.with_suffix(f".tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}")
    tmp.write_text(json.dumps(payload, separators=(",", ":")))
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


class FsBroker:
    """A shared-directory broker (see module docstring).

    ``cache_dir`` is the shared :class:`ResultCache` namespace every
    worker publishes into; it defaults to ``<root>/cache`` so a broker
    directory is self-contained, but pointing it at an existing sweep
    cache makes in-process and distributed runs share cells.
    """

    def __init__(
        self,
        root,
        cache_dir: Optional[str] = None,
        lease_ttl: float = 60.0,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
    ) -> None:
        self.root = Path(root)
        self.lease_ttl = float(lease_ttl)
        self.max_requeues = int(max_requeues)
        for sub in ("queue", "active", "done", "failed", "runs"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(cache_dir if cache_dir is not None else self.root / "cache")
        self.events_path = self.root / "events.jsonl"

    # -- paths ---------------------------------------------------------
    def _queued(self, key: str) -> Path:
        return self.root / "queue" / f"{key}.json"

    def _active(self, key: str) -> Path:
        return self.root / "active" / f"{key}.json"

    def _done(self, key: str) -> Path:
        return self.root / "done" / f"{key}.json"

    def _failed(self, key: str) -> Path:
        return self.root / "failed" / f"{key}.json"

    def _run_path(self, run_id: str) -> Path:
        return self.root / "runs" / f"{run_id}.json"

    # -- event log -----------------------------------------------------
    def _event(self, kind: str, key: str = "", **detail: Any) -> None:
        rec = {"t": time.time(), "kind": kind}
        if key:
            rec["key"] = key
        rec.update({k: v for k, v in detail.items() if v is not None})
        line = json.dumps(rec, separators=(",", ":")) + "\n"
        # one O_APPEND write per line: atomic for sane line lengths on
        # every local filesystem, so concurrent workers never interleave.
        fd = os.open(self.events_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def events(self) -> Iterator[Dict[str, Any]]:
        """Decode the event log, skipping any torn trailing line."""
        try:
            text = self.events_path.read_text()
        except FileNotFoundError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                continue

    # -- submission ----------------------------------------------------
    def submit(
        self,
        jobs: List[SimJob],
        experiment: str = "adhoc",
        labels: Optional[Dict[str, str]] = None,
    ) -> RunRecord:
        """Register a run and enqueue every cell not already satisfied.

        Cells whose key is already in the shared cache (or already
        completed through the broker) are recorded as cache hits and
        never enqueued — the content-addressed namespace is the dedup.
        Cells already queued/active (e.g. a concurrent run submitted
        the same grid) are joined, not duplicated.
        """
        from repro.service.api import job_to_spec

        run = RunRecord(
            id=uuid.uuid4().hex[:12],
            experiment=experiment,
            created=time.time(),
        )
        for job in jobs:
            key = job.key()
            run.keys.append(key)
            run.labels[key] = job.label()
            if self._done(key).exists() or self.cache.get(key) is not None:
                run.cached.append(key)
                self._event("cached", key, run=run.id, label=job.label())
                continue
            if self._active(key).exists() or self._queued(key).exists():
                self._event("joined", key, run=run.id, label=job.label())
                continue
            record = {
                "key": key,
                "spec": job_to_spec(job),
                "label": job.label(),
                "attempt": 1,
                "submitted": time.time(),
            }
            _write_atomic(self._queued(key), record)
            self._event("enqueue", key, run=run.id, label=job.label())
        _write_atomic(self._run_path(run.id), run.to_dict())
        self._event("submit", run=run.id, experiment=experiment, cells=len(run.keys),
                    cached=len(run.cached))
        return run

    # -- worker protocol ----------------------------------------------
    def claim(self, worker: str) -> Optional[Lease]:
        """Lease the oldest pending cell, or None when the queue is
        empty.  Claiming is an atomic rename: exactly one of any number
        of racing workers wins each cell."""
        queue_dir = self.root / "queue"
        try:
            names = sorted(
                queue_dir.iterdir(), key=lambda p: (p.stat().st_mtime, p.name)
            )
        except OSError:
            names = []
        for path in names:
            if path.suffix != ".json":
                continue
            key = path.stem
            target = self._active(key)
            try:
                os.rename(path, target)
            except OSError:
                continue  # someone else won this cell; try the next
            # rename preserves the queue file's mtime; refresh it so the
            # lease clock starts *now*, then stamp the claimant.
            os.utime(target)
            record = _read_json(target) or {"key": key, "spec": None, "attempt": 1}
            record["worker"] = worker
            record["leased_at"] = time.time()
            _write_atomic(target, record)
            if record.get("spec") is None:
                # an unreadable queue entry cannot be executed; fail it
                # loudly rather than bouncing it between states.
                self._fail_record(key, record, {
                    "exception": "BadJobSpec",
                    "message": "queue entry had no decodable job spec",
                    "kind": "error",
                })
                continue
            self._event("claim", key, worker=worker, attempt=record.get("attempt", 1))
            return Lease(
                key=key,
                spec=record["spec"],
                worker=worker,
                attempt=int(record.get("attempt", 1)),
                ttl=self.lease_ttl,
            )
        return None

    def heartbeat(self, key: str, worker: str) -> bool:
        """Refresh a lease; False when the lease is no longer held by
        ``worker`` (expired and requeued, completed elsewhere, ...)."""
        path = self._active(key)
        record = _read_json(path)
        if record is None or record.get("worker") != worker:
            return False
        try:
            os.utime(path)
        except OSError:
            return False
        return True

    def complete(
        self,
        key: str,
        worker: str,
        result: Dict[str, Any],
        elapsed: Optional[float] = None,
    ) -> bool:
        """Publish a finished cell: result into the shared cache, a
        ``done`` marker for accounting.  Idempotent — the first
        completion wins the ``O_EXCL`` marker; duplicates (a requeued
        cell finished twice) return False and change nothing, which is
        exactly right because the cache entry is content-addressed and
        byte-identical either way."""
        self.cache.put_dict(key, result)
        marker = {
            "key": key,
            "worker": worker,
            "elapsed": elapsed,
            "finished": time.time(),
        }
        try:
            fd = os.open(self._done(key), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            self._event("duplicate", key, worker=worker)
            self._cleanup(key)
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(marker, separators=(",", ":")))
        self._cleanup(key)
        self._event("complete", key, worker=worker, elapsed=elapsed)
        return True

    def fail(self, key: str, worker: str, failure: Dict[str, Any]) -> None:
        """Record a cell whose worker gave up (retries exhausted)."""
        record = _read_json(self._active(key)) or {"key": key}
        failure = dict(failure)
        failure.setdefault("worker", worker)
        self._fail_record(key, record, failure)

    def _fail_record(self, key: str, record: Dict[str, Any], failure: Dict[str, Any]) -> None:
        payload = {
            "key": key,
            "label": record.get("label", key[:12]),
            "attempt": record.get("attempt", 1),
            "failed": time.time(),
            **failure,
        }
        _write_atomic(self._failed(key), payload)
        self._cleanup(key)
        self._event("fail", key, worker=failure.get("worker"),
                    exception=failure.get("exception"))

    def _cleanup(self, key: str) -> None:
        for path in (self._active(key), self._queued(key)):
            try:
                path.unlink()
            except OSError:
                pass

    # -- lease reaping -------------------------------------------------
    def reap(self, now: Optional[float] = None) -> Tuple[int, int]:
        """Requeue every expired lease; returns ``(requeued, lost)``.

        Expiry is judged by the ``active/`` file's mtime (the heartbeat
        target).  The rename back to ``queue/`` is atomic, so however
        many processes reap concurrently, an expired cell is requeued
        exactly once.  A cell requeued more than ``max_requeues`` times
        is declared lost with a synthetic ``LeaseExpired`` failure.
        """
        now = time.time() if now is None else now
        requeued = lost = 0
        active_dir = self.root / "active"
        try:
            entries = list(active_dir.iterdir())
        except OSError:
            return (0, 0)
        for path in entries:
            if path.suffix != ".json":
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # completed/reaped under us
            if age <= self.lease_ttl:
                continue
            key = path.stem
            record = _read_json(path) or {"key": key, "attempt": 1}
            holder = record.get("worker")
            attempt = int(record.get("attempt", 1))
            if attempt > self.max_requeues:
                self._fail_record(key, record, {
                    "exception": "LeaseExpired",
                    "message": (
                        f"lease expired {attempt} time(s); last worker "
                        f"{holder or 'unknown'} never completed the cell"
                    ),
                    "kind": "lost",
                    "worker": holder,
                })
                lost += 1
                continue
            target = self._queued(key)
            try:
                os.rename(path, target)
            except OSError:
                continue  # a racing reaper (or completion) got there first
            record["attempt"] = attempt + 1
            record.pop("worker", None)
            record.pop("leased_at", None)
            _write_atomic(target, record)
            os.utime(target)
            self._event("requeue", key, worker=holder, attempt=attempt + 1)
            requeued += 1
        return (requeued, lost)

    # -- accounting ----------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {}
        for state in ("queue", "active", "done", "failed"):
            try:
                out[state] = sum(
                    1 for p in (self.root / state).iterdir() if p.suffix == ".json"
                )
            except OSError:
                out[state] = 0
        out["runs"] = sum(
            1 for p in (self.root / "runs").iterdir() if p.suffix == ".json"
        )
        return out

    def runs(self) -> List[RunRecord]:
        out = []
        for path in sorted((self.root / "runs").iterdir()):
            data = _read_json(path)
            if data is not None:
                out.append(RunRecord.from_dict(data))
        return out

    def run(self, run_id: str) -> Optional[RunRecord]:
        data = _read_json(self._run_path(run_id))
        return RunRecord.from_dict(data) if data is not None else None

    def cell_state(self, key: str) -> str:
        """``done`` | ``failed`` | ``active`` | ``queued`` | ``cached``
        | ``unknown`` — in precedence order (a completed cell may still
        have a stale queue copy for a moment)."""
        if self._done(key).exists():
            return "done"
        if self._failed(key).exists():
            return "failed"
        if self._active(key).exists():
            return "active"
        if self._queued(key).exists():
            return "queued"
        if self.cache.get(key) is not None:
            return "cached"
        return "unknown"

    def run_status(self, run_id: str) -> Optional[Dict[str, Any]]:
        """Per-run progress: cell states, terminal flag, counts."""
        run = self.run(run_id)
        if run is None:
            return None
        states = {key: self.cell_state(key) for key in run.keys}
        counts: Dict[str, int] = {}
        for state in states.values():
            counts[state] = counts.get(state, 0) + 1
        finished = sum(
            counts.get(s, 0) for s in ("done", "failed", "cached")
        ) + counts.get("unknown", 0)
        return {
            "run": run.id,
            "experiment": run.experiment,
            "created": run.created,
            "cells": len(run.keys),
            "counts": counts,
            "done": finished >= len(run.keys),
            "states": states,
        }

    def run_manifest(self, run_id: str) -> Optional[Dict[str, Any]]:
        """A sweep-manifest-shaped account of one run: per-cell status,
        worker attribution and wall-clock (from the ``done`` markers),
        failures, and every lease requeue — so the progress stream and
        the manifest tell one timing story (docs/robustness.md)."""
        run = self.run(run_id)
        if run is None:
            return None
        cells = []
        failures = []
        for key in run.keys:
            state = self.cell_state(key)
            cell: Dict[str, Any] = {
                "label": run.labels.get(key, key[:12]),
                "key": key,
                "status": "failed" if state == "failed" else "ok"
                if state in ("done", "cached") else state,
            }
            marker = _read_json(self._done(key))
            if marker is not None:
                cell["worker"] = marker.get("worker")
                if marker.get("elapsed") is not None:
                    cell["elapsed_s"] = marker["elapsed"]
            elif state == "cached" or key in run.cached:
                cell["worker"] = "cache"
            failure = _read_json(self._failed(key))
            if failure is not None:
                failures.append(failure)
            cells.append(cell)
        requeues = [
            ev for ev in self.events()
            if ev.get("kind") == "requeue" and ev.get("key") in run.labels
        ]
        ok = sum(1 for c in cells if c["status"] == "ok")
        return {
            "schema": 1,
            "run": run.id,
            "experiment": run.experiment,
            "cells": len(cells),
            "ok": ok,
            "failed": len(failures),
            "cache_hits": len(run.cached),
            "requeued": len(requeues),
            "jobs": cells,
            "failures": failures,
            "requeues": requeues,
        }
