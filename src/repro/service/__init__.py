"""Distributed sweep fabric + long-running service front-end.

The sweep engine (:mod:`repro.experiments.sweep`) treats an experiment
as a grid of independent :class:`~repro.experiments.sweep.SimJob`
cells; this package lets those cells leave the machine:

* :mod:`repro.service.api` — the wire protocol: a lossless JSON codec
  for ``SimJob`` (:func:`~repro.service.api.job_to_spec` /
  :func:`~repro.service.api.job_from_spec`), the event-record shapes,
  and the thin HTTP clients (:class:`~repro.service.api.ServiceClient`
  for submitters, :class:`~repro.service.api.HttpBroker` for workers);
* :mod:`repro.service.broker` — :class:`~repro.service.broker.FsBroker`,
  a filesystem-backed shared queue with atomic-rename claims, lease
  expiry + exactly-once requeue, heartbeats and idempotent completion
  keyed by the content-addressed cache key;
* :mod:`repro.service.worker` — :class:`~repro.service.worker.Worker`,
  the pull-based executor behind ``repro worker --broker URL``,
  reusing the PR 3 resilience machinery (retries with deterministic
  backoff, quarantine/timeout isolation, journal) per lease;
* :mod:`repro.service.server` — ``repro serve``: a stdlib
  ``ThreadingHTTPServer`` front-end to submit experiments
  (``POST /experiments``), stream cell-level progress as NDJSON/SSE
  (``GET /runs/<id>/events``), fetch cached ``CaseResult``\\ s and
  telemetry bundles, and scrape live Prometheus metrics
  (``GET /metrics``).

Determinism contract: a cell executed by a remote worker is the same
``SimJob.run()`` the in-process engine calls, completed into the same
content-addressed cache — results are byte-identical to an in-process
sweep, however many workers raced for the lease.  See
``docs/service.md``.
"""

from repro.service.api import (
    HttpBroker,
    ServiceClient,
    connect_broker,
    job_from_spec,
    job_to_spec,
)
from repro.service.broker import FsBroker, Lease
from repro.service.server import ServiceServer, serve
from repro.service.worker import Worker

__all__ = [
    "FsBroker",
    "HttpBroker",
    "Lease",
    "ServiceClient",
    "ServiceServer",
    "Worker",
    "connect_broker",
    "job_from_spec",
    "job_to_spec",
    "serve",
]
