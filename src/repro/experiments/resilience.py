"""Fault-tolerant sweep execution: retries, timeouts, quarantine, journal.

:func:`repro.experiments.sweep.run_sweep` treats a sweep as an
embarrassingly parallel grid; this module supplies the machinery that
keeps one bad cell from taking the grid down with it:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (derived from the job key, so two runs of the
  same sweep back off identically and results stay reproducible);
* :class:`JobFailure` — the structured record a failed cell leaves
  behind (exception type, message, traceback text, attempt count and a
  failure *kind*: ``"error"`` for an exception inside the simulation,
  ``"timeout"`` for a wedged worker, ``"crash"`` for a worker process
  that died);
* :func:`execute_job` — the worker entry point.  It never lets an
  exception escape as a bare pool failure: errors come back as
  structured records the parent can retry or report
  (``KeyboardInterrupt`` still propagates promptly so Ctrl-C works);
* :func:`run_isolated` — quarantine execution: one job in its own
  single-worker process, used both to re-try a job suspected of
  poisoning a shared pool and to enforce wall-clock timeouts;
* :class:`SweepJournal` — an append-only JSONL journal of completed
  cells.  A sweep interrupted half-way can be resumed
  (``SweepOptions(journal=..., resume=True)`` / ``repro sweep
  --journal PATH --resume``): journaled results are replayed without
  re-simulating, and the serialization round-trip is lossless, so
  resumed results are byte-identical to a clean run.

See ``docs/robustness.md`` for the failure-manifest format and the
overall execution model.
"""

from __future__ import annotations

import json
import os
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = [
    "JobFailure",
    "RetryPolicy",
    "SweepJournal",
    "execute_job",
    "run_isolated",
    "terminate_pool",
]


@dataclass
class JobFailure:
    """Structured record of one cell that could not be completed."""

    #: the job's cache key (SHA-256 of its payload).
    key: str
    #: human-readable cell label, e.g. ``case1/CCFIT``.
    label: str
    #: ``"error"`` | ``"timeout"`` | ``"crash"``.
    kind: str
    #: exception class name (``"RuntimeError"``), or a synthetic name
    #: for process-level failures (``"WorkerCrash"``, ``"JobTimeout"``).
    exception: str
    message: str
    #: formatted traceback from inside the worker ("" when the process
    #: died before it could report one).
    traceback: str = ""
    #: total attempts made (first try + retries).
    attempts: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "kind": self.kind,
            "exception": self.exception,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }

    def summary(self) -> str:
        return f"{self.label}: {self.kind} after {self.attempts} attempt(s) ({self.exception}: {self.message})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter."""

    #: retries *after* the first attempt (0 disables retrying).
    max_retries: int = 2
    #: first backoff delay (seconds).
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    #: extra fraction of the delay added from the job key (spreads
    #: concurrent retries without a random source, so sweeps replay
    #: identically).
    jitter: float = 0.25
    #: hard cap on one backoff sleep (seconds).
    backoff_max: float = 10.0

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        frac = int(key[:8], 16) / float(0xFFFFFFFF) if key[:8] else 0.0
        return min(self.backoff_max, base * (1.0 + self.jitter * frac))


def execute_job(job) -> Dict[str, Any]:
    """Worker entry point: run one cell, ship back a structured record.

    Successful cells return ``{"ok": True, "result": <CaseResult dict>,
    "elapsed": <wall-clock s>, "worker": "pid<n>"}`` (the result in the
    same serialized form the cache stores, so parallel, journaled and
    cached paths share one decode path; the elapsed/worker fields feed
    the manifest's timing attribution).  Exceptions inside the
    simulation return ``{"ok": False, "error": {...}}`` instead of
    surfacing as bare pool failures — the parent decides whether to
    retry.  ``KeyboardInterrupt`` (and other ``BaseException``\\ s such
    as ``SystemExit``) are re-raised so interruption propagates
    promptly.
    """
    t0 = time.perf_counter()
    try:
        return {
            "ok": True,
            "key": job.key(),
            "result": job.run().to_dict(),
            "elapsed": time.perf_counter() - t0,
            "worker": f"pid{os.getpid()}",
        }
    except Exception as exc:
        return {
            "ok": False,
            "key": job.key(),
            "error": {
                "exception": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        }


def terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, killing wedged workers.

    ``shutdown(wait=True)`` would block on a worker stuck in an
    endless simulation; terminating the processes first makes the
    shutdown return promptly.  Used when a per-job timeout fires.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for proc in processes:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - process already gone
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken executor internals
        pass


def run_isolated(job, timeout: Optional[float] = None) -> Dict[str, Any]:
    """Run one job in its own single-worker process (quarantine).

    Used to (a) retry a job suspected of having poisoned a shared pool
    without risking the other cells, and (b) enforce a wall-clock
    timeout on a single cell.  Returns the structured record of
    :func:`execute_job`; process-level failures are mapped onto the
    same shape with ``kind`` detail in the error record.
    """
    pool = ProcessPoolExecutor(max_workers=1)
    try:
        future = pool.submit(execute_job, job)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            terminate_pool(pool)
            return {
                "ok": False,
                "key": job.key(),
                "kind": "timeout",
                "error": {
                    "exception": "JobTimeout",
                    "message": f"no result within {timeout:.1f} s (worker terminated)",
                    "traceback": "",
                },
            }
        except BrokenProcessPool:
            return {
                "ok": False,
                "key": job.key(),
                "kind": "crash",
                "error": {
                    "exception": "WorkerCrash",
                    "message": "worker process died while running the job",
                    "traceback": "",
                },
            }
    finally:
        terminate_pool(pool)


class SweepJournal:
    """Append-only JSONL journal of completed sweep cells.

    One line per event::

        {"key": "<sha256>", "ok": true,  "result": {...}}   # completed
        {"key": "<sha256>", "ok": false, "failure": {...}}  # gave up

    :meth:`load` tolerates a truncated trailing line (the crash that
    motivated the journal may have happened mid-write); everything up
    to the last complete line is recovered.  Results ride inline so a
    resume does not depend on the (optional, separately managed) result
    cache.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None

    # -- reading -------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Key -> completed ok-record.  Failure lines are *not* returned:
        a resumed sweep retries previously failed cells.  An undecodable
        line — the torn tail of an interrupted write — is warned about
        and skipped; its cell simply re-runs."""
        done: Dict[str, Dict[str, Any]] = {}
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return done
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                tail = " (torn tail of an interrupted write)" if lineno == len(lines) else ""
                warnings.warn(
                    f"journal {self.path}: skipping undecodable line "
                    f"{lineno}{tail}; its cell will be re-run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if isinstance(rec, dict) and rec.get("ok") and "key" in rec and "result" in rec:
                done[rec["key"]] = rec
        return done

    # -- writing -------------------------------------------------------
    def _append(self, rec: Dict[str, Any]) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_result(self, key: str, result: Dict[str, Any]) -> None:
        self._append({"key": key, "ok": True, "result": result})

    def record_failure(self, failure: JobFailure) -> None:
        self._append({"key": failure.key, "ok": False, "failure": failure.to_dict()})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
