"""Parallel sweep engine with a content-addressed on-disk result cache.

Every figure of §IV is an embarrassingly parallel grid of independent
simulations — (case, scheme, seed, time_scale) cells.  This module
turns such a grid into explicit :class:`SimJob` values and executes
them through :func:`run_sweep`, which

* fans cells out across worker processes via
  :class:`concurrent.futures.ProcessPoolExecutor` when
  ``SweepOptions.jobs > 1`` (falling back to serial in-process
  execution when the platform lacks usable multiprocessing), and
* memoizes finished cells in a :class:`ResultCache` keyed by a SHA-256
  hash of everything that determines the cell's output — topology
  descriptor, :class:`~repro.core.params.CCParams`, traffic case,
  scheme, seed, time scale and the ``repro`` version — so repeated CLI
  runs, benchmarks and EXPERIMENTS.md regeneration reuse results
  instead of re-simulating.

Determinism contract: a cell is seeded only by its own ``SimJob``
fields, so a parallel run, a serial run and a cache hit all yield
bit-for-bit identical aggregates (`CaseResult` serialization is
lossless; JSON round-trips finite floats exactly).

See ``docs/sweep.md`` for the job/cache model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.core.params import CCParams
from repro.experiments.configs import CONFIG1, CONFIG2, CONFIG3
from repro.experiments.runner import CASE_NAMES, CaseResult, run_case

__all__ = [
    "SweepOptions",
    "SimJob",
    "ResultCache",
    "SweepReport",
    "run_sweep",
    "default_cache_dir",
]


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweep``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    return env if env else os.path.join(os.path.expanduser("~"), ".cache", "repro-sweep")


@dataclass(frozen=True)
class SweepOptions:
    """Execution options shared by runners, the CLI and scripts.

    ``time_scale``/``seed``/``params`` are the *defaults* a runner
    applies when the caller did not pass them explicitly; ``jobs`` and
    the cache fields control the engine.  ``cache_dir=None`` (the
    default) disables the cache entirely, keeping programmatic calls
    pure — the CLI opts in explicitly.
    """

    time_scale: float = 1.0
    seed: int = 1
    params: Optional[CCParams] = None
    #: worker processes; 1 = serial in-process execution.
    jobs: int = 1
    #: cache directory, or None for no on-disk cache.
    cache_dir: Optional[str] = None
    #: master switch (lets a CLI ``--no-cache`` keep the dir setting).
    use_cache: bool = True

    @property
    def cache_enabled(self) -> bool:
        return self.use_cache and self.cache_dir is not None


#: per-case topology descriptors baked into cache keys: a cell's output
#: depends on the network the case runs on, not only the case name.
_CASE_CONFIG = {"case1": CONFIG1, "case2": CONFIG2, "case3": CONFIG2, "case4": CONFIG3}


def _config_descriptor(case: str) -> Dict[str, Any]:
    cfg = _CASE_CONFIG[case]
    return {
        "config": cfg.name,
        "topology": cfg.topology,
        "nodes": cfg.num_nodes,
        "switches": cfg.num_switches,
        "crossbar_bw": cfg.crossbar_bw,
        "link_bandwidths": list(cfg.link_bandwidths),
        "mtu": cfg.mtu,
        "memory_size": cfg.memory_size,
    }


@dataclass(frozen=True)
class SimJob:
    """One independent simulation cell of a sweep grid."""

    #: traffic case ("case1".."case4") — fixes topology and workload.
    case: str
    scheme: str
    time_scale: float = 1.0
    seed: int = 1
    #: None means the case's default parameters (``CCParams()``).
    params: Optional[CCParams] = None
    #: per-case knobs, e.g. (("num_trees", 4), ("duration_ms", 3.0)).
    extra: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.case not in CASE_NAMES:
            raise KeyError(f"unknown case {self.case!r}; choose from {sorted(CASE_NAMES)}")

    def payload(self) -> Dict[str, Any]:
        """Everything that determines this cell's output (the cache-key
        preimage); see docs/sweep.md for the field inventory."""
        return {
            "version": __version__,
            "case": self.case,
            "topology": _config_descriptor(self.case),
            "scheme": self.scheme,
            "time_scale": self.time_scale,
            "seed": self.seed,
            "params": dataclasses.asdict(self.params if self.params is not None else CCParams()),
            "extra": dict(self.extra),
        }

    def key(self) -> str:
        blob = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def run(self) -> CaseResult:
        """Execute the cell in-process (deterministic for fixed fields)."""
        return run_case(
            self.case,
            scheme=self.scheme,
            time_scale=self.time_scale,
            seed=self.seed,
            params=self.params,
            **dict(self.extra),
        )

    def label(self) -> str:  # pragma: no cover - cosmetic
        extra = ",".join(f"{k}={v}" for k, v in self.extra)
        return f"{self.case}/{self.scheme}" + (f"[{extra}]" if extra else "")


class ResultCache:
    """Content-addressed store of finished cells: one JSON file per
    cache key under ``root``.  Writes are atomic (tmp + rename) so
    concurrent sweeps sharing a directory never observe torn files;
    unreadable or schema-mismatched entries count as misses."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[CaseResult]:
        try:
            data = json.loads(self.path(key).read_text())
            return CaseResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, result: CaseResult, job: Optional[SimJob] = None) -> None:
        payload: Dict[str, Any] = {"result": result.to_dict()}
        if job is not None:
            payload["job"] = job.payload()
        tmp = self.path(key).with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path(key))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        n = 0
        for p in self.root.glob("*.json"):
            try:
                p.unlink()
                n += 1
            except OSError:  # pragma: no cover - concurrent clear
                pass
        return n


@dataclass
class SweepReport:
    """What :func:`run_sweep` did: results aligned with the job list,
    plus cache and execution accounting."""

    jobs: List[SimJob]
    results: List[CaseResult]
    #: cells served from the on-disk cache.
    hits: int = 0
    #: cells actually simulated this run.
    misses: int = 0
    #: worker processes used (1 = serial, incl. parallel fallback).
    workers: int = 1
    elapsed: float = 0.0

    def by_scheme(self) -> Dict[str, CaseResult]:
        """Scheme -> result, for the common one-cell-per-scheme grids."""
        return {job.scheme: res for job, res in zip(self.jobs, self.results)}

    def summary(self) -> str:
        return (
            f"{len(self.jobs)} cell(s): {self.hits} cache hit(s), "
            f"{self.misses} simulated on {self.workers} worker(s) "
            f"in {self.elapsed:.1f} s"
        )


def _execute_job(job: SimJob) -> Dict[str, Any]:
    """Worker entry point: run one cell, ship it back as a JSON-safe
    dict (the same serialized form the cache stores, so parallel and
    cached paths share one decode path)."""
    return job.run().to_dict()


#: pool-infrastructure failures that trigger the serial fallback;
#: simulation errors inside a worker are *not* swallowed.
_POOL_ERRORS = (
    OSError,
    ImportError,
    NotImplementedError,
    PermissionError,
    BrokenProcessPool,
    pickle.PicklingError,
)


def _parallel_map(jobs: Sequence[SimJob], workers: int) -> List[Dict[str, Any]]:
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        return list(pool.map(_execute_job, jobs))


def run_sweep(jobs: Sequence[SimJob], *, options: Optional[SweepOptions] = None) -> SweepReport:
    """Execute a grid of cells, reusing cached results where possible.

    Cells already in the cache are returned without simulating; the
    rest run either serially (``options.jobs <= 1``) or on a process
    pool.  If the pool cannot be brought up (restricted platforms,
    unpicklable state), the engine degrades gracefully to serial
    execution — results are identical either way.
    """
    opts = options if options is not None else SweepOptions()
    cache = ResultCache(opts.cache_dir) if opts.cache_enabled else None
    t0 = time.perf_counter()

    results: List[Optional[CaseResult]] = [None] * len(jobs)
    keys: List[Optional[str]] = [None] * len(jobs)
    pending: List[int] = []
    hits = 0
    for i, job in enumerate(jobs):
        if cache is not None:
            keys[i] = job.key()
            found = cache.get(keys[i])
            if found is not None:
                results[i] = found
                hits += 1
                continue
        pending.append(i)

    workers = 1
    if pending:
        executed: Optional[List[Dict[str, Any]]] = None
        if opts.jobs > 1 and len(pending) > 1:
            try:
                executed = _parallel_map([jobs[i] for i in pending], opts.jobs)
                workers = min(opts.jobs, len(pending))
            except _POOL_ERRORS:
                executed = None  # fall back to serial below
        if executed is not None:
            for i, data in zip(pending, executed):
                results[i] = CaseResult.from_dict(data)
        else:
            for i in pending:
                results[i] = jobs[i].run()
        if cache is not None:
            for i in pending:
                cache.put(keys[i] or jobs[i].key(), results[i], job=jobs[i])

    return SweepReport(
        jobs=list(jobs),
        results=results,  # type: ignore[arg-type] - every slot is filled
        hits=hits,
        misses=len(pending),
        workers=workers,
        elapsed=time.perf_counter() - t0,
    )
