"""Parallel sweep engine with a content-addressed on-disk result cache.

Every figure of §IV is an embarrassingly parallel grid of independent
simulations — (case, scheme, seed, time_scale) cells.  This module
turns such a grid into explicit :class:`SimJob` values and executes
them through :func:`run_sweep`, which

* fans cells out across worker processes via
  :class:`concurrent.futures.ProcessPoolExecutor` when
  ``SweepOptions.jobs > 1`` (falling back to serial in-process
  execution when the platform lacks usable multiprocessing),
* memoizes finished cells in a :class:`ResultCache` keyed by a SHA-256
  hash of everything that determines the cell's output — topology
  descriptor, :class:`~repro.core.params.CCParams`, traffic case,
  scheme, routing policy, seed, time scale and the ``repro`` version —
  so repeated CLI
  runs, benchmarks and EXPERIMENTS.md regeneration reuse results
  instead of re-simulating, and
* survives misbehaving cells: per-job wall-clock timeouts, bounded
  retries with exponential backoff, quarantine of jobs that crash or
  wedge their worker (retried in an isolated single-worker process,
  then recorded in the failure manifest without aborting the sweep),
  graceful degradation to serial execution when pools keep breaking,
  and an optional completed-job journal enabling ``--resume`` after an
  interrupt.  Partial results are first-class: a failed cell leaves a
  ``None`` slot and a structured :class:`~repro.experiments.resilience.JobFailure`
  in ``SweepReport.failures``.

Determinism contract: a cell is seeded only by its own ``SimJob``
fields, so a parallel run, a serial run, a retried run, a resumed run
and a cache hit all yield bit-for-bit identical aggregates
(`CaseResult` serialization is lossless; JSON round-trips finite
floats exactly).

See ``docs/sweep.md`` for the job/cache model and
``docs/robustness.md`` for the failure-handling model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time
import traceback as _traceback
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.core.params import CCParams
from repro.experiments.configs import CONFIG1, CONFIG2, CONFIG3
from repro.experiments.resilience import (
    JobFailure,
    RetryPolicy,
    SweepJournal,
    execute_job,
    run_isolated,
    terminate_pool,
)
from repro.experiments.runner import CASE_NAMES, CaseResult, run_case
from repro.sim.faults import FaultPlan
from repro.telemetry import TelemetryConfig

__all__ = [
    "SweepOptions",
    "SimJob",
    "ResultCache",
    "SweepReport",
    "run_sweep",
    "default_cache_dir",
]


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweep``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    return env if env else os.path.join(os.path.expanduser("~"), ".cache", "repro-sweep")


@dataclass(frozen=True)
class SweepOptions:
    """Execution options shared by runners, the CLI and scripts.

    ``time_scale``/``seed``/``params`` are the *defaults* a runner
    applies when the caller did not pass them explicitly; ``jobs`` and
    the cache fields control the engine.  ``cache_dir=None`` (the
    default) disables the cache entirely, keeping programmatic calls
    pure — the CLI opts in explicitly.
    """

    time_scale: float = 1.0
    seed: int = 1
    params: Optional[CCParams] = None
    #: default routing policy for cells that don't pin one
    #: (docs/routing.md); "det" is the paper's deterministic routing.
    routing: str = "det"
    #: simulation kernel for cells that don't pin one
    #: (docs/performance.md); None defers to the engine default /
    #: ``REPRO_SIM_KERNEL``.  All kernels are byte-identical, so this
    #: is a speed knob, not a result knob.
    kernel: Optional[str] = None
    #: worker processes; 1 = serial in-process execution.
    jobs: int = 1
    #: cache directory, or None for no on-disk cache.
    cache_dir: Optional[str] = None
    #: master switch (lets a CLI ``--no-cache`` keep the dir setting).
    use_cache: bool = True
    #: per-job wall-clock timeout in *seconds*, or None for no limit.
    #: Enforcing a timeout requires running the job in a worker process
    #: (a wedged in-process job cannot be interrupted), so a timeout
    #: also routes ``jobs=1`` runs through single-worker pools.
    timeout: Optional[float] = None
    #: bounded retries per failing cell (on top of the first attempt).
    max_retries: int = 2
    #: first retry backoff in seconds (doubles per retry, plus
    #: deterministic per-job jitter — see resilience.RetryPolicy).
    backoff: float = 0.25
    #: path of a completed-job JSONL journal, or None for no journal.
    journal: Optional[str] = None
    #: replay completed cells from the journal instead of re-running.
    resume: bool = False
    #: attach a telemetry sampler to every cell (docs/telemetry.md);
    #: None runs without telemetry.  Results stay byte-identical — the
    #: bundle is additive — but the config is part of the cache key, so
    #: telemetry and non-telemetry runs never serve each other's cells.
    telemetry: Optional[TelemetryConfig] = None
    #: inject deterministic faults into every cell (docs/faults.md);
    #: None runs fault-free.  The plan is part of the cache key, so
    #: faulted and fault-free runs never serve each other's cells.
    faults: Optional[FaultPlan] = None
    #: switch buffer organisation for cells that don't pin one
    #: (docs/buffers.md); None defers to the params default ("static",
    #: the paper's per-port partitioning).  Non-static models change
    #: admission decisions, so the model is part of the cache key.
    buffer_model: Optional[str] = None

    @property
    def cache_enabled(self) -> bool:
        return self.use_cache and self.cache_dir is not None

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(max_retries=self.max_retries, backoff_base=self.backoff)


#: per-case topology descriptors baked into cache keys: a cell's output
#: depends on the network the case runs on, not only the case name.
_CASE_CONFIG = {"case1": CONFIG1, "case2": CONFIG2, "case3": CONFIG2, "case4": CONFIG3}


def _config_descriptor(case: str) -> Dict[str, Any]:
    cfg = _CASE_CONFIG[case]
    return {
        "config": cfg.name,
        "topology": cfg.topology,
        "nodes": cfg.num_nodes,
        "switches": cfg.num_switches,
        "crossbar_bw": cfg.crossbar_bw,
        "link_bandwidths": list(cfg.link_bandwidths),
        "mtu": cfg.mtu,
        "memory_size": cfg.memory_size,
    }


@dataclass(frozen=True)
class SimJob:
    """One independent simulation cell of a sweep grid."""

    #: traffic case ("case1".."case4") — fixes topology and workload.
    case: str
    scheme: str
    time_scale: float = 1.0
    seed: int = 1
    #: None means the case's default parameters (``CCParams()``).
    params: Optional[CCParams] = None
    #: per-case knobs, e.g. (("num_trees", 4), ("duration_ms", 3.0)).
    extra: Tuple[Tuple[str, Any], ...] = ()
    #: telemetry sampling config, or None for no telemetry.
    telemetry: Optional[TelemetryConfig] = None
    #: routing policy the cell runs under (docs/routing.md); "det" is
    #: the paper's deterministic routing.
    routing: str = "det"
    #: simulation kernel the cell runs on (docs/performance.md); None
    #: defers to the engine default / ``REPRO_SIM_KERNEL``.  Canonical
    #: at construction (case-insensitive, did-you-mean on typos).
    kernel: Optional[str] = None
    #: deterministic fault plan (docs/faults.md), or None for a
    #: fault-free cell.  Times are at ``time_scale=1.0``; the runner
    #: scales them with the cell.
    faults: Optional[FaultPlan] = None
    #: switch buffer organisation (docs/buffers.md); None defers to
    #: the params default ("static").  Unlike ``kernel`` this *is*
    #: part of the cache key: a shared-buffer cell admits, pauses and
    #: therefore delivers differently from a static one.
    buffer_model: Optional[str] = None

    def __post_init__(self) -> None:
        if self.case not in CASE_NAMES:
            raise KeyError(f"unknown case {self.case!r}; choose from {sorted(CASE_NAMES)}")
        if self.kernel is not None:
            from repro.sim.engine import resolve_kernel

            object.__setattr__(self, "kernel", resolve_kernel(self.kernel))

    def __getattr__(self, name: str) -> Any:
        # jobs pickled (or journaled) before the routing/kernel axes
        # existed deserialize without the fields; they meant
        # deterministic routing on the default kernel.
        if name == "routing":
            return "det"
        if name in ("kernel", "faults", "buffer_model"):
            return None
        raise AttributeError(name)

    def payload(self) -> Dict[str, Any]:
        """Everything that determines this cell's output (the cache-key
        preimage); see docs/sweep.md for the field inventory.  The
        ``telemetry`` key appears only when telemetry is enabled, the
        ``routing`` key only for non-default policies, and the
        ``buffer_model`` key only for non-static models, so
        pre-telemetry / pre-routing / pre-buffer-model cache entries
        keep their keys.

        ``kernel`` is deliberately **absent**: every kernel produces
        byte-identical results (the golden-equivalence contract, see
        docs/performance.md), so a cached bucket-kernel cell may serve
        a batch-kernel run and vice versa — the kernel is a speed
        knob, not part of the output's preimage."""
        out = {
            "version": __version__,
            "case": self.case,
            "topology": _config_descriptor(self.case),
            "scheme": self.scheme,
            "time_scale": self.time_scale,
            "seed": self.seed,
            "params": dataclasses.asdict(self.params if self.params is not None else CCParams()),
            "extra": dict(self.extra),
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.to_dict()
        if self.routing != "det":
            out["routing"] = self.routing
        if self.faults is not None:
            # unscaled plan + time_scale: the preimage is the *input*;
            # the runner derives the scaled plan deterministically.
            out["faults"] = self.faults.to_dict()
        if self.buffer_model is not None and self.buffer_model != "static":
            out["buffer_model"] = self.buffer_model
        return out

    def key(self) -> str:
        blob = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def run(self) -> CaseResult:
        """Execute the cell in-process (deterministic for fixed fields)."""
        return run_case(
            self.case,
            scheme=self.scheme,
            time_scale=self.time_scale,
            seed=self.seed,
            params=self.params,
            telemetry=self.telemetry,
            routing=self.routing,
            kernel=self.kernel,
            faults=self.faults,
            buffer_model=self.buffer_model,
            **dict(self.extra),
        )

    def label(self) -> str:
        extra = ",".join(f"{k}={v}" for k, v in self.extra)
        base = f"{self.case}/{self.scheme}"
        if self.routing != "det":
            base += f"@{self.routing}"
        if self.kernel is not None:
            base += f"#{self.kernel}"
        if self.faults is not None:
            base += f"+{self.faults.label()}"
        if self.buffer_model is not None and self.buffer_model != "static":
            base += f"%{self.buffer_model}"
        return base + (f"[{extra}]" if extra else "")


class ResultCache:
    """Content-addressed store of finished cells: one JSON file per
    cache key under ``root``.

    Integrity hardening:

    * writes are atomic (tmp + rename), so concurrent sweeps sharing a
      directory never observe torn files;
    * every entry embeds a SHA-256 digest of its result payload,
      verified on read, so a corrupt or truncated entry can never
      silently poison a figure;
    * a corrupt entry is moved to ``root/quarantine/`` (preserving the
      evidence), counted in :attr:`discarded`, reported through
      :mod:`warnings`, and the cell is recomputed — a bad entry is a
      loud miss, never a wrong result.

    Only *data* errors are treated as misses (unreadable file, invalid
    JSON, digest mismatch, undecodable result schema); programming
    errors propagate.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: entries discarded as corrupt/undecodable since construction.
        self.discarded = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @staticmethod
    def _digest(result: Dict[str, Any]) -> str:
        blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _discard(self, key: str, reason: str) -> None:
        """Quarantine a bad entry (or drop it if even that fails)."""
        self.discarded += 1
        target: Optional[Path] = self.quarantine_dir / f"{key}.json"
        try:
            self.quarantine_dir.mkdir(exist_ok=True)
            os.replace(self.path(key), target)
        except OSError:
            target = None
            try:
                self.path(key).unlink()
            except OSError:
                pass
        where = f"; quarantined to {target}" if target is not None else ""
        warnings.warn(
            f"sweep cache entry {key[:12]}... discarded: {reason}{where} "
            f"(the cell will be recomputed)",
            RuntimeWarning,
            stacklevel=3,
        )

    def get(self, key: str) -> Optional[CaseResult]:
        try:
            text = self.path(key).read_text()
        except FileNotFoundError:
            return None  # a plain miss
        except OSError as exc:
            warnings.warn(
                f"sweep cache entry {key[:12]}... unreadable ({exc}); treating as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        try:
            data = json.loads(text)
        except ValueError:
            self._discard(key, "invalid JSON (torn or truncated write)")
            return None
        if not isinstance(data, dict) or "result" not in data:
            self._discard(key, "unrecognized entry schema")
            return None
        stored = data.get("sha256")
        if stored is not None and stored != self._digest(data["result"]):
            self._discard(key, "content digest mismatch")
            return None
        try:
            return CaseResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError) as exc:
            # digest-valid but undecodable: written by an incompatible
            # schema version.  Loudly recompute rather than guess.
            self._discard(key, f"undecodable result ({type(exc).__name__}: {exc})")
            return None

    def put(self, key: str, result: CaseResult, job: Optional[SimJob] = None) -> None:
        self.put_dict(key, result.to_dict(), job_payload=job.payload() if job is not None else None)

    def put_dict(
        self, key: str, result_dict: Dict[str, Any], job_payload: Optional[Dict[str, Any]] = None
    ) -> None:
        """Store an already-serialized result (the worker/service path
        receives dicts over the wire; re-hydrating just to re-serialize
        would be waste).  Same atomic-write + digest envelope as
        :meth:`put`."""
        payload: Dict[str, Any] = {
            "schema": 2,
            "sha256": self._digest(result_dict),
            "result": result_dict,
        }
        if job_payload is not None:
            payload["job"] = job_payload
        tmp = self.path(key).with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path(key))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        n = 0
        for p in self.root.glob("*.json"):
            try:
                p.unlink()
                n += 1
            except OSError:  # pragma: no cover - concurrent clear
                pass
        return n

    # -- hygiene (the `repro cache` subcommand) ------------------------
    def entries(self) -> List[Tuple[str, int, float]]:
        """``(key, size_bytes, mtime)`` per entry, oldest first."""
        out: List[Tuple[str, int, float]] = []
        for p in self.root.glob("*.json"):
            try:
                st = p.stat()
            except OSError:
                continue
            out.append((p.stem, st.st_size, st.st_mtime))
        out.sort(key=lambda e: e[2])
        return out

    def quarantined(self) -> List[Tuple[str, int, float]]:
        """``(name, size_bytes, mtime)`` per quarantined file."""
        out: List[Tuple[str, int, float]] = []
        if not self.quarantine_dir.is_dir():
            return out
        for p in self.quarantine_dir.iterdir():
            try:
                st = p.stat()
            except OSError:
                continue
            out.append((p.name, st.st_size, st.st_mtime))
        out.sort(key=lambda e: e[2])
        return out

    def stats(self) -> Dict[str, Any]:
        """A JSON-safe summary: entry/byte totals and age extremes —
        what ``repro cache`` prints for a shared namespace."""
        entries = self.entries()
        quarantined = self.quarantined()
        now = time.time()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _k, size, _m in entries),
            "oldest_age_s": (now - entries[0][2]) if entries else None,
            "newest_age_s": (now - entries[-1][2]) if entries else None,
            "quarantined": len(quarantined),
            "quarantined_bytes": sum(size for _n, size, _m in quarantined),
        }

    def prune(
        self,
        max_age_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
        include_quarantine: bool = True,
    ) -> Dict[str, int]:
        """Evict entries older than ``max_age_s``, then — oldest first —
        until the namespace fits ``max_bytes``.  Quarantined files are
        pruned by the same age rule (they are evidence, not results —
        they never count toward the size budget).  Returns removal
        accounting."""
        removed = freed = 0
        now = time.time()
        entries = self.entries()
        if max_age_s is not None:
            cutoff = now - max_age_s
            keep: List[Tuple[str, int, float]] = []
            for key, size, mtime in entries:
                if mtime < cutoff:
                    try:
                        self.path(key).unlink()
                        removed += 1
                        freed += size
                    except OSError:
                        pass
                else:
                    keep.append((key, size, mtime))
            entries = keep
        if max_bytes is not None:
            total = sum(size for _k, size, _m in entries)
            for key, size, _mtime in entries:  # oldest first
                if total <= max_bytes:
                    break
                try:
                    self.path(key).unlink()
                    removed += 1
                    freed += size
                    total -= size
                except OSError:
                    pass
        q_removed = 0
        if include_quarantine and max_age_s is not None:
            cutoff = now - max_age_s
            for name, size, mtime in self.quarantined():
                if mtime < cutoff:
                    try:
                        (self.quarantine_dir / name).unlink()
                        q_removed += 1
                        freed += size
                    except OSError:
                        pass
        return {"removed": removed, "freed_bytes": freed, "quarantine_removed": q_removed}


@dataclass
class SweepReport:
    """What :func:`run_sweep` did: results aligned with the job list,
    plus cache, execution and failure accounting.

    Partial results are first-class: a cell that exhausted its retries
    leaves ``None`` in :attr:`results` and a structured
    :class:`~repro.experiments.resilience.JobFailure` in
    :attr:`failures`; everything else is intact.
    """

    jobs: List[SimJob]
    results: List[Optional[CaseResult]]
    #: cells served from the on-disk cache.
    hits: int = 0
    #: cells not served from cache/journal (attempted this run).
    misses: int = 0
    #: worker processes used (1 = serial, incl. parallel fallback).
    workers: int = 1
    elapsed: float = 0.0
    #: cells replayed from the resume journal.
    resumed: int = 0
    #: retry attempts performed across all cells.
    retried: int = 0
    #: structured records of the cells that could not be completed.
    failures: List[JobFailure] = field(default_factory=list)
    #: execution degraded to serial after repeated pool breakage.
    degraded: bool = False
    #: corrupt cache entries discarded (and recomputed) this run.
    cache_discarded: int = 0
    #: human-readable execution notes (e.g. unenforceable timeouts).
    notes: List[str] = field(default_factory=list)
    #: per-cell wall-clock seconds, aligned with :attr:`jobs` (None for
    #: cells served from cache/journal or failed).  Recorded so the
    #: manifest and the service progress stream agree on timing
    #: attribution.
    cell_elapsed: List[Optional[float]] = field(default_factory=list)
    #: per-cell executor id, aligned with :attr:`jobs`: ``"pid<n>"``
    #: for simulated cells, ``"cache"``/``"journal"`` for replayed
    #: ones, None for failed cells.
    cell_workers: List[Optional[str]] = field(default_factory=list)

    @property
    def ok(self) -> int:
        """Cells simulated successfully this run."""
        return self.misses - len(self.failures)

    @property
    def failed(self) -> int:
        return len(self.failures)

    def by_scheme(self) -> Dict[str, CaseResult]:
        """Scheme -> result, for the common one-cell-per-scheme grids.
        Failed cells are absent from the mapping."""
        return {
            job.scheme: res for job, res in zip(self.jobs, self.results) if res is not None
        }

    def summary(self) -> str:
        s = (
            f"{len(self.jobs)} cell(s): {self.hits} cache hit(s), "
            f"{self.ok} simulated on {self.workers} worker(s) "
            f"in {self.elapsed:.1f} s"
        )
        if self.resumed:
            s += f", {self.resumed} resumed from journal"
        if self.retried:
            s += f", {self.retried} retried"
        if self.failures:
            s += f", {len(self.failures)} FAILED"
        if self.degraded:
            s += " (degraded to serial after pool breakage)"
        return s

    # -- failure manifest ----------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        """A JSON-safe structured account of the run (see
        docs/robustness.md for the schema)."""
        failed_keys = {f.key for f in self.failures}
        cells = []
        for i, (job, res) in enumerate(zip(self.jobs, self.results)):
            key = job.key()
            cell = {
                "label": job.label(),
                "key": key,
                "status": "failed" if key in failed_keys and res is None else "ok",
            }
            if i < len(self.cell_workers) and self.cell_workers[i] is not None:
                cell["worker"] = self.cell_workers[i]
            if i < len(self.cell_elapsed) and self.cell_elapsed[i] is not None:
                cell["elapsed_s"] = self.cell_elapsed[i]
            cells.append(cell)
        return {
            "schema": 1,
            "cells": len(self.jobs),
            "ok": self.ok,
            "cache_hits": self.hits,
            "resumed": self.resumed,
            "retried": self.retried,
            "failed": len(self.failures),
            "workers": self.workers,
            "degraded": self.degraded,
            "cache_discarded": self.cache_discarded,
            "elapsed_s": self.elapsed,
            "notes": list(self.notes),
            "jobs": cells,
            "failures": [f.to_dict() for f in self.failures],
        }

    def write_manifest(self, path) -> None:
        """Atomically write :meth:`manifest` as JSON to ``path``."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        tmp = p.with_suffix(p.suffix + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.manifest(), indent=2) + "\n")
        os.replace(tmp, p)


def _execute_job(job: SimJob) -> Dict[str, Any]:
    """Worker entry point (kept as the historical name; the
    implementation lives in :func:`repro.experiments.resilience.execute_job`).
    Returns a structured ``{"ok": ..., ...}`` record — worker exceptions
    never surface as bare pool failures, while ``KeyboardInterrupt``
    still propagates promptly."""
    return execute_job(job)


#: pool-infrastructure failures that trigger the serial fallback;
#: simulation errors inside a worker are *not* swallowed (they come
#: back as structured records from :func:`execute_job`).
_POOL_ERRORS = (
    OSError,
    ImportError,
    NotImplementedError,
    PermissionError,
    BrokenProcessPool,
    pickle.PicklingError,
)

#: pool teardowns tolerated before degrading to serial execution.
_MAX_POOL_REBUILDS = 2


class _SweepRun:
    """One :func:`run_sweep` invocation's mutable execution state."""

    def __init__(
        self,
        jobs: Sequence[SimJob],
        keys: List[str],
        opts: SweepOptions,
        cache: Optional[ResultCache],
        journal: Optional[SweepJournal],
    ) -> None:
        self.jobs = jobs
        self.keys = keys
        self.opts = opts
        self.cache = cache
        self.journal = journal
        self.policy = opts.retry_policy()
        self.results: List[Optional[CaseResult]] = [None] * len(jobs)
        self.failures: List[JobFailure] = []
        self.retried = 0
        self.degraded = False
        self.notes: List[str] = []
        self.cell_elapsed: List[Optional[float]] = [None] * len(jobs)
        self.cell_workers: List[Optional[str]] = [None] * len(jobs)

    # -- bookkeeping ---------------------------------------------------
    def complete(
        self,
        i: int,
        result: CaseResult,
        result_dict: Optional[Dict] = None,
        elapsed: Optional[float] = None,
        worker: Optional[str] = None,
    ) -> None:
        self.results[i] = result
        self.cell_elapsed[i] = elapsed
        self.cell_workers[i] = worker
        if self.cache is not None:
            self.cache.put(self.keys[i], result, job=self.jobs[i])
        if self.journal is not None:
            self.journal.record_result(
                self.keys[i], result_dict if result_dict is not None else result.to_dict()
            )

    def fail(self, i: int, kind: str, exception: str, message: str, tb: str, attempts: int) -> None:
        failure = JobFailure(
            key=self.keys[i],
            label=self.jobs[i].label(),
            kind=kind,
            exception=exception,
            message=message,
            traceback=tb,
            attempts=attempts,
        )
        self.failures.append(failure)
        if self.journal is not None:
            self.journal.record_failure(failure)

    def backoff(self, attempt: int, i: int) -> None:
        self.retried += 1
        time.sleep(self.policy.delay(attempt, self.keys[i]))

    # -- in-process serial execution -----------------------------------
    def run_serial(self, indices: Sequence[int]) -> None:
        """The zero-infrastructure path: in-process, exceptions captured
        per cell, retries honoured.  Wall-clock timeouts cannot be
        enforced in-process (a wedged job never yields control)."""
        for i in indices:
            attempt = 0
            while True:
                attempt += 1
                t0 = time.perf_counter()
                try:
                    result = self.jobs[i].run()
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    if attempt <= self.policy.max_retries:
                        self.backoff(attempt, i)
                        continue
                    self.fail(
                        i, "error", type(exc).__name__, str(exc),
                        _traceback.format_exc(), attempt,
                    )
                    break
                else:
                    self.complete(
                        i, result,
                        elapsed=time.perf_counter() - t0,
                        worker=f"pid{os.getpid()}",
                    )
                    break

    # -- quarantined (isolated single-worker) execution ----------------
    def run_quarantined(self, i: int, attempt: int) -> None:
        """A job suspected of poisoning a shared pool (or needing an
        enforced timeout) runs in its own single-worker process until it
        completes or exhausts its retry budget."""
        while True:
            attempt += 1
            try:
                record = run_isolated(self.jobs[i], timeout=self.opts.timeout)
            except _POOL_ERRORS:
                # cannot even bring up an isolation process: last resort
                # is the in-process path (no timeout enforcement).
                if self.opts.timeout is not None:
                    self.notes.append(
                        f"{self.jobs[i].label()}: isolation pool unavailable; "
                        f"ran in-process without timeout enforcement"
                    )
                self.run_serial([i])
                return
            if record.get("ok"):
                self.complete(
                    i, CaseResult.from_dict(record["result"]), record["result"],
                    elapsed=record.get("elapsed"), worker=record.get("worker"),
                )
                return
            if attempt <= self.policy.max_retries:
                self.backoff(attempt, i)
                continue
            err = record.get("error", {})
            self.fail(
                i,
                record.get("kind", "error"),
                err.get("exception", "UnknownError"),
                err.get("message", ""),
                err.get("traceback", ""),
                attempt,
            )
            return

    # -- shared-pool parallel execution --------------------------------
    def run_parallel(self, indices: Sequence[int], max_workers: int) -> bool:
        """Fan ``indices`` out across a worker pool.

        Returns False when the pool infrastructure is unusable (the
        caller falls back to :meth:`run_serial`).  Handles, without
        aborting the sweep:

        * structured error records — bounded retries with backoff;
        * a worker crash (``BrokenProcessPool``) — every in-flight job
          becomes a *suspect* and is retried in quarantine, where the
          poisoned job reveals itself and innocent bystanders complete;
        * a per-job timeout — the pool is torn down (the wedged worker
          cannot be interrupted), the expired job goes to quarantine
          with an enforced timeout, and unexpired in-flight jobs are
          requeued without blame;
        * repeated pool breakage — after ``_MAX_POOL_REBUILDS``
          teardowns the remaining cells degrade to quarantined/serial
          execution.
        """
        queue = deque((i, 1) for i in indices)
        inflight: Dict[Any, Tuple[int, int, Optional[float]]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        pool_breaks = 0
        timeout = self.opts.timeout
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        except _POOL_ERRORS:
            return False
        try:
            while queue or inflight:
                # degrade once pools have proven unreliable
                if pool is None and pool_breaks >= _MAX_POOL_REBUILDS:
                    self.degraded = True
                    remaining = [i for i, _a in queue]
                    queue.clear()
                    if timeout is not None:
                        for i in remaining:
                            self.run_quarantined(i, 0)
                    else:
                        self.run_serial(remaining)
                    continue
                if pool is None:
                    try:
                        pool = ProcessPoolExecutor(max_workers=max_workers)
                    except _POOL_ERRORS:
                        pool_breaks = _MAX_POOL_REBUILDS  # force degradation
                        continue
                # top up the pool
                broken = False
                suspects: List[Tuple[int, int]] = []
                while queue and len(inflight) < max_workers:
                    i, attempt = queue.popleft()
                    try:
                        future = pool.submit(execute_job, self.jobs[i])
                    except _POOL_ERRORS:
                        queue.appendleft((i, attempt))
                        broken = True
                        break
                    deadline = (time.monotonic() + timeout) if timeout is not None else None
                    inflight[future] = (i, attempt, deadline)
                expired: List[Tuple[Any, Tuple[int, int, Optional[float]]]] = []
                if not broken and inflight:
                    wait_for: Optional[float] = None
                    if timeout is not None:
                        nearest = min(dl for (_i, _a, dl) in inflight.values())
                        wait_for = max(0.0, nearest - time.monotonic())
                    done, _not_done = wait(
                        set(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        i, attempt, _dl = inflight.pop(future)
                        try:
                            record = future.result()
                        except KeyboardInterrupt:
                            raise
                        except BaseException:
                            # the worker died while running this job (or
                            # the pool broke under it): quarantine.
                            suspects.append((i, attempt))
                            broken = True
                            continue
                        if record.get("ok"):
                            self.complete(
                                i, CaseResult.from_dict(record["result"]), record["result"],
                                elapsed=record.get("elapsed"), worker=record.get("worker"),
                            )
                        elif attempt <= self.policy.max_retries:
                            self.backoff(attempt, i)
                            queue.append((i, attempt + 1))
                        else:
                            err = record.get("error", {})
                            self.fail(
                                i, "error",
                                err.get("exception", "UnknownError"),
                                err.get("message", ""),
                                err.get("traceback", ""),
                                attempt,
                            )
                    if not done and timeout is not None:
                        now = time.monotonic()
                        expired = [
                            (f, v) for f, v in inflight.items()
                            if v[2] is not None and v[2] <= now
                        ]
                if expired:
                    # a worker is wedged: the pool must go (a stuck
                    # process cannot be interrupted from outside).
                    for future, (i, attempt, _dl) in expired:
                        del inflight[future]
                        suspects.append((i, attempt))
                    broken = True
                if broken:
                    # unexpired in-flight jobs are innocent bystanders:
                    # requeue them without consuming a retry.
                    for future, (i, attempt, _dl) in list(inflight.items()):
                        queue.appendleft((i, attempt))
                    inflight.clear()
                    terminate_pool(pool)
                    pool = None
                    pool_breaks += 1
                    for i, attempt in suspects:
                        self.run_quarantined(i, attempt)
            return True
        finally:
            if pool is not None:
                terminate_pool(pool)


def run_sweep(jobs: Sequence[SimJob], *, options: Optional[SweepOptions] = None) -> SweepReport:
    """Execute a grid of cells, reusing cached results where possible.

    Cells already in the cache (or, with ``options.resume``, the
    journal) are returned without simulating; the rest run either
    serially (``options.jobs <= 1``) or on a process pool.  If the pool
    cannot be brought up (restricted platforms, unpicklable state), the
    engine degrades gracefully to serial execution — results are
    identical either way.  A cell that crashes, times out or keeps
    raising is recorded in ``SweepReport.failures`` and leaves a
    ``None`` result slot; the rest of the sweep completes normally.
    """
    opts = options if options is not None else SweepOptions()
    cache = ResultCache(opts.cache_dir) if opts.cache_enabled else None
    journal = SweepJournal(opts.journal) if opts.journal else None
    t0 = time.perf_counter()

    keys = [job.key() for job in jobs]
    journaled = journal.load() if (journal is not None and opts.resume) else {}
    run = _SweepRun(jobs, keys, opts, cache, journal)

    pending: List[int] = []
    hits = 0
    resumed = 0
    for i, job in enumerate(jobs):
        rec = journaled.get(keys[i])
        if rec is not None:
            run.results[i] = CaseResult.from_dict(rec["result"])
            run.cell_workers[i] = "journal"
            resumed += 1
            continue
        if cache is not None:
            found = cache.get(keys[i])
            if found is not None:
                run.results[i] = found
                run.cell_workers[i] = "cache"
                hits += 1
                continue
        pending.append(i)

    workers = 1
    try:
        if pending:
            if opts.jobs > 1 and len(pending) > 1:
                n_workers = min(opts.jobs, len(pending))
                if run.run_parallel(pending, n_workers):
                    workers = n_workers
                else:
                    run.run_serial(pending)
            elif opts.timeout is not None:
                # timeouts need a worker process even for serial runs
                for i in pending:
                    run.run_quarantined(i, 0)
            else:
                run.run_serial(pending)
    finally:
        if journal is not None:
            journal.close()

    return SweepReport(
        jobs=list(jobs),
        results=run.results,
        hits=hits,
        misses=len(pending),
        workers=workers,
        elapsed=time.perf_counter() - t0,
        resumed=resumed,
        retried=run.retried,
        failures=run.failures,
        degraded=run.degraded,
        cache_discarded=cache.discarded if cache is not None else 0,
        notes=run.notes,
        cell_elapsed=run.cell_elapsed,
        cell_workers=run.cell_workers,
    )
