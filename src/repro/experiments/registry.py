"""Experiment registry: names -> runnable sweep definitions.

Maps every figure panel and traffic case of §IV (``"fig7a"`` ...
``"fig10"``, ``"case1"`` ... ``"case4"``) to an :class:`Experiment`
bundling the cell runner it decomposes into, its scheme list and how
its results are rendered.  The CLI, the ``run_fig*`` wrappers and
``scripts/make_experiments.py`` all dispatch through this table
instead of hand-written per-subcommand branching, so a new experiment
becomes available everywhere by a single :func:`register` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.ccfit import FIG8_SCHEMES, PAPER_SCHEMES, SCHEMES
from repro.experiments.runner import CaseResult
from repro.experiments.sweep import SimJob, SweepOptions, SweepReport, run_sweep
from repro.sim.faults import FaultPlan

__all__ = ["Experiment", "register", "get", "names", "experiments", "describe", "REGISTRY"]

#: Fig. 9 plots Case #1's victim + contributors; Fig. 10 Case #2's five flows.
CASE1_FLOWS = ("F0", "F1", "F2", "F5", "F6")
CASE2_FLOWS = ("F0", "F1", "F2", "F3", "F4")


@dataclass(frozen=True)
class Experiment:
    """One named sweep: a grid of (scheme x cell) simulations."""

    name: str
    title: str
    #: the cell runner (``repro.experiments.runner.CASE_NAMES`` entry).
    case: str
    #: default scheme list (the paper's, for figures).
    schemes: Tuple[str, ...]
    #: rendering hint: "series" (throughput vs time) | "flows"
    #: (per-flow bandwidth table).
    kind: str = "series"
    #: flow names the "flows" rendering tabulates.
    flows: Tuple[str, ...] = ()
    #: static per-case knobs (e.g. Fig. 8's ``num_trees``).
    extra: Tuple[Tuple[str, Any], ...] = ()
    #: default routing-policy axis (docs/routing.md).  Empty means one
    #: policy per grid — whatever the caller/options select (usually
    #: "det"); a non-empty tuple (the ``routing_grid`` experiment)
    #: crosses every scheme with every listed policy.
    routings: Tuple[str, ...] = ()
    #: default fault-scenario axis (docs/faults.md): named
    #: :class:`~repro.sim.faults.FaultPlan`\ s (or None for the
    #: fault-free baseline) crossed with every (scheme, routing) cell.
    #: Empty means one scenario per grid — whatever the caller/options
    #: inject (usually none).
    faults: Tuple[Optional[FaultPlan], ...] = ()
    #: default buffer-model axis (docs/buffers.md): registered model
    #: names crossed with every cell (the ``datacenter_incast``
    #: experiment pits static against shared).  Empty means one model
    #: per grid — whatever the caller/options select (usually the
    #: params default, "static").
    buffer_models: Tuple[str, ...] = ()

    def jobs(
        self,
        *,
        schemes: Optional[Tuple[str, ...]] = None,
        routings: Optional[Tuple[str, ...]] = None,
        time_scale: float = 1.0,
        seed: int = 1,
        params=None,
        telemetry=None,
        routing: str = "det",
        kernel=None,
        faults=None,
        buffer_model=None,
        **overrides,
    ) -> List[SimJob]:
        """Decompose into one :class:`SimJob` per (scheme, routing,
        fault-scenario, buffer-model) cell.  ``overrides`` update the
        static ``extra`` knobs (the ``trees`` CLI command overrides
        ``num_trees`` this way).  The routing axis defaults to
        :attr:`routings`, falling back to the single policy
        ``routing``; the fault axis defaults to :attr:`faults`, falling
        back to the single plan ``faults`` (usually None); the buffer
        axis defaults to :attr:`buffer_models`, falling back to the
        single model ``buffer_model`` (usually None = params
        default)."""
        extra = dict(self.extra)
        extra.update(overrides)
        axis = routings if routings is not None else self.routings
        if not axis:
            axis = (routing,)
        axis_f = self.faults if self.faults else (faults,)
        axis_b = self.buffer_models if self.buffer_models else (buffer_model,)
        return [
            SimJob(
                case=self.case,
                scheme=s,
                time_scale=time_scale,
                seed=seed,
                params=params,
                extra=tuple(sorted(extra.items())),
                telemetry=telemetry,
                routing=r,
                kernel=kernel,
                faults=f,
                buffer_model=b,
            )
            for s in (schemes if schemes is not None else self.schemes)
            for r in axis
            for f in axis_f
            for b in axis_b
        ]

    def run(
        self,
        *,
        schemes: Optional[Tuple[str, ...]] = None,
        routings: Optional[Tuple[str, ...]] = None,
        options: Optional[SweepOptions] = None,
        time_scale: Optional[float] = None,
        seed: Optional[int] = None,
        params=None,
        **overrides,
    ) -> Tuple[Dict[str, CaseResult], SweepReport]:
        """Run the grid through the sweep engine; explicit keywords win
        over the corresponding ``options`` fields.

        The result mapping is keyed by scheme for det cells and
        ``"<scheme>@<routing>"`` for non-det cells, so single-policy
        grids keep their historical keys while routing grids stay
        unambiguous; fault-scenario cells append ``"+<plan label>"``
        (the ``fault_resilience`` grid) and non-static buffer-model
        cells append ``"%<model>"`` (the ``datacenter_incast``
        grid)."""
        opts = options if options is not None else SweepOptions()
        jobs = self.jobs(
            schemes=schemes,
            routings=routings,
            time_scale=opts.time_scale if time_scale is None else time_scale,
            seed=opts.seed if seed is None else seed,
            params=params if params is not None else opts.params,
            telemetry=opts.telemetry,
            routing=opts.routing,
            kernel=opts.kernel,
            faults=getattr(opts, "faults", None),
            buffer_model=getattr(opts, "buffer_model", None),
            **overrides,
        )
        report = run_sweep(jobs, options=opts)
        results = {}
        for job, res in zip(report.jobs, report.results):
            if res is None:
                continue
            key = job.scheme if job.routing == "det" else f"{job.scheme}@{job.routing}"
            if job.faults is not None:
                key += f"+{job.faults.label()}"
            elif self.faults:
                key += "+none"  # the grid's fault-free baseline cell
            if job.buffer_model is not None and job.buffer_model != "static":
                key += f"%{job.buffer_model}"
            results[key] = res
        return results, report


REGISTRY: Dict[str, Experiment] = {}


def register(exp: Experiment) -> Experiment:
    if exp.name in REGISTRY:
        raise KeyError(f"experiment {exp.name!r} already registered")
    REGISTRY[exp.name] = exp
    return exp


def get(name: str) -> Experiment:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {', '.join(names())}"
        ) from None


def names() -> Tuple[str, ...]:
    return tuple(REGISTRY)


def experiments() -> Tuple[Experiment, ...]:
    return tuple(REGISTRY.values())


def describe() -> List[Dict[str, Any]]:
    """JSON-safe descriptors of every registered experiment — the
    registry as an API surface (``GET /experiments`` on ``repro
    serve``).  Fault-plan axes are reported by label (plans themselves
    are not part of the submission protocol; they arrive as spec
    strings)."""
    out: List[Dict[str, Any]] = []
    for exp in REGISTRY.values():
        out.append({
            "name": exp.name,
            "title": exp.title,
            "case": exp.case,
            "kind": exp.kind,
            "schemes": list(exp.schemes),
            "routings": list(exp.routings) or ["det"],
            "buffer_models": list(exp.buffer_models) or ["static"],
            "faults": [
                plan.label() if plan is not None else "none" for plan in exp.faults
            ] or ["none"],
            "extra": dict(exp.extra),
            "flows": list(exp.flows),
        })
    return out


# ---------------------------------------------------------------- figures
register(Experiment("fig7a", "Fig. 7a — network throughput vs time (Config #1 / Case #1)",
                    case="case1", schemes=PAPER_SCHEMES, kind="series"))
register(Experiment("fig7b", "Fig. 7b — network throughput vs time (Config #2 / Case #2)",
                    case="case2", schemes=PAPER_SCHEMES, kind="series"))
register(Experiment("fig7c", "Fig. 7c — network throughput vs time (Config #2 / Case #3)",
                    case="case3", schemes=PAPER_SCHEMES, kind="series"))
register(Experiment("fig8a", "Fig. 8a — Config #3, 1 congestion tree",
                    case="case4", schemes=FIG8_SCHEMES, kind="series",
                    extra=(("num_trees", 1),)))
register(Experiment("fig8b", "Fig. 8b — Config #3, 4 congestion trees",
                    case="case4", schemes=FIG8_SCHEMES, kind="series",
                    extra=(("num_trees", 4),)))
register(Experiment("fig8c", "Fig. 8c — Config #3, 6 congestion trees",
                    case="case4", schemes=FIG8_SCHEMES, kind="series",
                    extra=(("num_trees", 6),)))
register(Experiment("fig9", "Fig. 9 — per-flow bandwidth (Config #1 / Case #1, fairness)",
                    case="case1", schemes=PAPER_SCHEMES, kind="flows", flows=CASE1_FLOWS))
register(Experiment("fig10", "Fig. 10 — per-flow bandwidth (Config #2 / Case #2)",
                    case="case2", schemes=PAPER_SCHEMES, kind="flows", flows=CASE2_FLOWS))

# ---------------------------------------------------------------- cases
_ALL_SCHEMES = tuple(SCHEMES)
register(Experiment("case1", "Traffic Case #1 on Config #1 (hotspot staircase + victim)",
                    case="case1", schemes=_ALL_SCHEMES, kind="flows", flows=CASE1_FLOWS))
register(Experiment("case2", "Traffic Case #2 on Config #2 (two hot nodes)",
                    case="case2", schemes=_ALL_SCHEMES, kind="flows", flows=CASE2_FLOWS))
register(Experiment("case3", "Traffic Case #3 on Config #2 (Case #2 + uniform noise)",
                    case="case3", schemes=_ALL_SCHEMES, kind="flows", flows=CASE2_FLOWS))
register(Experiment("case4", "Traffic Case #4 on Config #3 (hotspot burst, scalability)",
                    case="case4", schemes=_ALL_SCHEMES, kind="series",
                    extra=(("num_trees", 1),)))

# ---------------------------------------------------------------- routing
# Adaptive routing x congestion control on the Fig. 8b incast (Config
# #3, 4 simultaneous congestion trees): does spreading flows over the
# alternative upward paths help or hurt once CCFIT/FBICM isolate the
# congested flows?  (Cf. Rocher-Gonzalez et al. on the interaction of
# adaptive routing and congestion control in fat-trees.)
register(Experiment("routing_grid",
                    "Routing x scheme grid on Config #3 (4 congestion trees)",
                    case="case4", schemes=("ITh", "FBICM", "CCFIT"), kind="grid",
                    extra=(("num_trees", 4),),
                    routings=("det", "ecmp", "adaptive", "flowlet")))

# ---------------------------------------------------------------- faults
# Fault scenarios on the Fig. 8a incast (Config #3, one congestion
# tree; hotspot burst [1 ms, 2 ms]).  Each plan strikes mid-burst, when
# congestion control is actively isolating/throttling: ``flap`` drops a
# leaf uplink for 300 us and restores it, ``kill`` severs it for good,
# ``degrade`` quarters a spine uplink's bandwidth.  Plan times are at
# time_scale=1.0 and scale with the cell.  The None entry is the
# fault-free baseline every scenario is compared against (keyed
# "+none"); see docs/faults.md and report.render_fault_matrix.
_FAULT_SCENARIOS = (
    None,
    FaultPlan.parse("down:s0p4->s16p0@1.2ms;up:s0p4->s16p0@1.5ms", name="flap"),
    FaultPlan.parse("kill:s0p4->s16p0@1.2ms", name="kill"),
    FaultPlan.parse("degrade:s16p4->s32p0@1.1ms:bw=0.25", name="degrade"),
)
register(Experiment("fault_resilience",
                    "Scheme x routing x fault scenario on Config #3 (1 tree)",
                    case="case4", schemes=("ITh", "FBICM", "CCFIT"), kind="faults",
                    extra=(("num_trees", 1),),
                    routings=("det", "adaptive", "flowlet"),
                    faults=_FAULT_SCENARIOS))

# ---------------------------------------------------------------- buffers
# Datacenter stack vs CCFIT on the Fig. 8a incast (Config #3, one
# congestion tree): the paper's congested-flow isolation schemes
# against the RoCEv2 answer — shared switch memory with dynamic
# thresholds and 802.1Qbb PAUSE (docs/buffers.md) — crossed with the
# buffer organisation itself, so each scheme is measured both on the
# paper's per-port partitioning and on the shared pool that makes PFC
# bite.  ``report.render_pfc_matrix`` tabulates throughput alongside
# the PAUSE-storm counters (pfc_pauses_sent, headroom peaks) and the
# victim-flow bandwidth that shows PFC's congestion spreading.
register(Experiment("datacenter_incast",
                    "Scheme x buffer model on Config #3 (incast, PFC vs CCFIT)",
                    case="case4", schemes=("ITh", "FBICM", "CCFIT", "PFC+RCM"),
                    kind="buffers",
                    extra=(("num_trees", 1),),
                    buffer_models=("static", "shared")))
