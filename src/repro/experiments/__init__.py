"""The paper's evaluation, reproducible end to end.

* :mod:`repro.experiments.configs` — Table I as code: the three network
  configurations with their topologies, bandwidths and memories.
* :mod:`repro.experiments.runner` — the simulation cells (one
  (case, scheme, seed, time_scale) run each) and the per-figure
  aggregation wrappers (Fig. 7a/7b/7c, Fig. 8a/8b/8c, Fig. 9, Fig. 10).
* :mod:`repro.experiments.sweep` — the parallel sweep engine: decomposes
  a figure into independent :class:`~repro.experiments.sweep.SimJob`
  cells, fans them out across worker processes and memoizes finished
  cells in a content-addressed on-disk cache (docs/sweep.md).
* :mod:`repro.experiments.registry` — experiment names (``"fig9"``,
  ``"case3"``, ...) -> runnable sweep definitions; the CLI and scripts
  dispatch through it.
* :mod:`repro.experiments.report` — ASCII rendering used by the
  benchmark harness and EXPERIMENTS.md regeneration.
"""

from repro.experiments import registry
from repro.experiments.configs import CONFIG1, CONFIG2, CONFIG3, NetworkConfig, table1
from repro.experiments.registry import Experiment
from repro.experiments.runner import (
    CaseResult,
    run_case,
    run_case1,
    run_case2,
    run_case3,
    run_case4,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_figure,
)
from repro.experiments.sweep import (
    ResultCache,
    SimJob,
    SweepOptions,
    SweepReport,
    run_sweep,
)

__all__ = [
    "CONFIG1",
    "CONFIG2",
    "CONFIG3",
    "NetworkConfig",
    "table1",
    "CaseResult",
    "run_case",
    "run_case1",
    "run_case2",
    "run_case3",
    "run_case4",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_figure",
    "registry",
    "Experiment",
    "ResultCache",
    "SimJob",
    "SweepOptions",
    "SweepReport",
    "run_sweep",
]
