"""The paper's evaluation, reproducible end to end.

* :mod:`repro.experiments.configs` — Table I as code: the three network
  configurations with their topologies, bandwidths and memories.
* :mod:`repro.experiments.runner` — one entry point per figure
  (Fig. 7a/7b/7c, Fig. 8a/8b/8c, Fig. 9, Fig. 10), each returning the
  series/values the paper plots.
* :mod:`repro.experiments.report` — ASCII rendering used by the
  benchmark harness and EXPERIMENTS.md regeneration.
"""

from repro.experiments.configs import CONFIG1, CONFIG2, CONFIG3, NetworkConfig, table1
from repro.experiments.runner import (
    run_case1,
    run_case2,
    run_case3,
    run_case4,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
)

__all__ = [
    "CONFIG1",
    "CONFIG2",
    "CONFIG3",
    "NetworkConfig",
    "table1",
    "run_case1",
    "run_case2",
    "run_case3",
    "run_case4",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
]
