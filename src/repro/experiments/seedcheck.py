"""Multi-seed robustness checks (formerly ``repro.experiments.robustness``).

The paper reports single runs; a credible reproduction should show its
qualitative claims are not seed artifacts.  :func:`seed_sweep` reruns a
case across seeds and aggregates the metrics the shape assertions rest
on (victim bandwidth, contributor fairness, mean throughput), and
:func:`claim_holds` evaluates an ordering claim with a tolerance for
how many seeds may violate it.

Renamed from ``robustness`` to avoid confusion with the *execution*
robustness layer (fault-tolerant sweeps, cache integrity, invariant
guard — see docs/robustness.md); the old import path still works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from repro.experiments.runner import CaseResult

__all__ = ["SweepStats", "seed_sweep", "claim_holds"]


@dataclass(frozen=True)
class SweepStats:
    """Mean/std/min/max of one scalar metric across seeds."""

    name: str
    values: tuple

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.name}: {self.mean:.3f} ± {self.std:.3f} [{self.min:.3f}, {self.max:.3f}]"


def seed_sweep(
    runner: Callable[..., CaseResult],
    scheme: str,
    seeds: Iterable[int],
    metrics: Dict[str, Callable[[CaseResult], float]],
    **runner_kwargs,
) -> Dict[str, SweepStats]:
    """Run ``runner(scheme, seed=s, **kwargs)`` per seed; aggregate
    each named metric across the runs."""
    collected: Dict[str, List[float]] = {name: [] for name in metrics}
    for seed in seeds:
        res = runner(scheme, seed=seed, **runner_kwargs)
        for name, fn in metrics.items():
            collected[name].append(float(fn(res)))
    return {name: SweepStats(name, tuple(vals)) for name, vals in collected.items()}


def claim_holds(
    lhs: Sequence[float],
    rhs: Sequence[float],
    margin: float = 1.0,
    allowed_violations: int = 0,
) -> bool:
    """Does ``lhs[i] > rhs[i] * margin`` hold seed-by-seed (with at
    most ``allowed_violations`` exceptions)?

    Paired per-seed comparison is much stronger than comparing means:
    both sides share the seed's workload randomness.
    """
    if len(lhs) != len(rhs):
        raise ValueError("paired comparison needs equal-length sequences")
    violations = sum(1 for a, b in zip(lhs, rhs) if not a > b * margin)
    return violations <= allowed_violations
