"""Figure runners: regenerate every curve of §IV.

Each ``run_*`` function builds the right fabric+workload, simulates,
and returns a :class:`CaseResult` per scheme carrying exactly what the
corresponding figure plots (network-throughput series for Fig. 7/8,
per-flow bandwidth series for Fig. 9/10) plus the aggregates the
shape tests and EXPERIMENTS.md assert on.

The layer is split in two since the sweep engine landed
(:mod:`repro.experiments.sweep`):

* :func:`run_case` is the **cell** entry point — one (case, scheme,
  seed, time_scale) simulation, keyword-only, exactly what one
  :class:`~repro.experiments.sweep.SimJob` executes;
* :func:`run_figure` (and the ``run_fig*`` wrappers) are thin
  **aggregation** drivers: they build one job per scheme and hand the
  grid to the engine, which may fan out across worker processes and/or
  serve cells from the on-disk cache.  With no options they degrade to
  the original serial in-process loop, bit-for-bit.

The legacy positional call forms (``run_case1("1Q", 0.3, 7)``,
``run_fig8(4, FIG8_SCHEMES, ...)``) keep working through thin
backwards-compatible shims.

``time_scale`` shrinks the paper's 10 ms windows proportionally — the
benches run at 0.15–0.3x to stay fast; EXPERIMENTS.md records 1.0x
runs.  All runs are deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.core.ccfit import FIG8_SCHEMES, PAPER_SCHEMES
from repro.core.params import CCParams
from repro.experiments.configs import CONFIG1, CONFIG2, CONFIG3
from repro.metrics.analysis import jain_index
from repro.network.fabric import Fabric, build_fabric
from repro.traffic.flows import attach_traffic
from repro.traffic.patterns import (
    MS,
    case1_flows,
    case2_flows,
    case3_traffic,
    case4_traffic,
)

__all__ = [
    "CaseResult",
    "run_case",
    "run_figure",
    "run_case1",
    "run_case2",
    "run_case3",
    "run_case4",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "CASE_NAMES",
    "PAPER_SCHEMES",
    "FIG8_SCHEMES",
]


@dataclass
class CaseResult:
    """Everything one simulated scheme contributes to a figure."""

    scheme: str
    duration: float
    #: (bin mid-times ns, delivered GB/s).
    throughput: Tuple[np.ndarray, np.ndarray]
    #: flow name -> (times, GB/s) series.
    flow_series: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    #: flow name -> mean GB/s over the steady tail window.
    flow_bandwidth: Dict[str, float] = field(default_factory=dict)
    #: aggregate counters from Fabric.stats().
    stats: Dict[str, float] = field(default_factory=dict)
    #: the tail measurement window (ns).
    window: Tuple[float, float] = (0.0, 0.0)
    #: telemetry bundle (:meth:`repro.telemetry.TelemetrySampler.bundle`)
    #: when the cell ran with telemetry enabled; None otherwise.  The
    #: bundle is additive: every other field is byte-identical with
    #: telemetry on or off.
    telemetry: Optional[Dict[str, Any]] = None
    #: routing policy the cell ran under (docs/routing.md).  Serialized
    #: only when not "det", so pre-routing results keep their bytes.
    routing: str = "det"
    #: fault-injector snapshot (:meth:`repro.sim.faults.FaultInjector.
    #: snapshot`) when the cell ran under a FaultPlan; None — and
    #: absent from the serialized form — otherwise (docs/faults.md).
    faults: Optional[Dict[str, Any]] = None
    #: buffer model the cell's switches ran (docs/buffers.md).
    #: Serialized only when not "static", so pre-buffer-model results
    #: keep their bytes.
    buffer_model: str = "static"

    def mean_throughput(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        times, rates = self.throughput
        lo = self.window[0] if t0 is None else t0
        hi = self.window[1] if t1 is None else t1
        mask = (times >= lo) & (times < hi)
        return float(rates[mask].mean()) if mask.any() else 0.0

    def fairness(self, flows: Iterable[str]) -> float:
        return jain_index([self.flow_bandwidth.get(f, 0.0) for f in flows])

    # -- serialization (cache + worker transport) -----------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; :meth:`from_dict` inverts it losslessly
        (json round-trips finite floats exactly).  The ``telemetry``
        key is present only when a bundle is attached, and the
        ``routing`` key only for non-default policies, so results
        without either serialize exactly as they always have."""
        out: Dict[str, Any] = {
            "scheme": self.scheme,
            "duration": self.duration,
            "throughput": [self.throughput[0].tolist(), self.throughput[1].tolist()],
            "flow_series": {
                name: [t.tolist(), r.tolist()] for name, (t, r) in self.flow_series.items()
            },
            "flow_bandwidth": dict(self.flow_bandwidth),
            "stats": dict(self.stats),
            "window": [self.window[0], self.window[1]],
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        if self.routing != "det":
            out["routing"] = self.routing
        if self.faults is not None:
            out["faults"] = self.faults
        if self.buffer_model != "static":
            out["buffer_model"] = self.buffer_model
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CaseResult":
        times, rates = data["throughput"]
        return cls(
            scheme=data["scheme"],
            duration=float(data["duration"]),
            throughput=(np.asarray(times, dtype=float), np.asarray(rates, dtype=float)),
            flow_series={
                name: (np.asarray(t, dtype=float), np.asarray(r, dtype=float))
                for name, (t, r) in data["flow_series"].items()
            },
            flow_bandwidth=dict(data["flow_bandwidth"]),
            stats=dict(data["stats"]),
            window=(float(data["window"][0]), float(data["window"][1])),
            telemetry=data.get("telemetry"),
            routing=data.get("routing", "det"),
            faults=data.get("faults"),
            buffer_model=data.get("buffer_model", "static"),
        )


def _run(
    config,
    scheme: str,
    flows,
    uniform,
    duration: float,
    window: Tuple[float, float],
    seed: int,
    params: Optional[CCParams],
    bin_ns: float,
    sim_factory=None,
    validate: Optional[bool] = None,
    telemetry=None,
    routing: str = "det",
    faults=None,
    buffer_model: Optional[str] = None,
) -> CaseResult:
    from repro.metrics.collector import Collector

    if buffer_model is not None:
        base = params if params is not None else CCParams()
        if base.buffer_model != buffer_model:
            params = base.with_overrides(buffer_model=buffer_model)
    effective_model = (
        params.buffer_model if params is not None else "static"
    )
    sim = sim_factory() if sim_factory is not None else None
    if effective_model != "static":
        # Non-static models pace admissions with PAUSE/RESUME control
        # events; the batched kernel's slot-fused sweep cannot honour
        # mid-slot XOFF crossings, so fall back to the validated
        # byte-identical ``bucket`` kernel — the same degradation path
        # fault injection takes (docs/buffers.md).
        from repro.sim.engine import Simulator

        if sim is None:
            sim = Simulator()
        if sim.kernel == "batch":
            import warnings

            warnings.warn(
                f"buffer model {effective_model!r} is not supported on the "
                "'batch' kernel; falling back to the bucket kernel for "
                "this cell",
                RuntimeWarning,
                stacklevel=3,
            )
            sim = Simulator(kernel="bucket")
    if faults is not None:
        # Fault injection needs the wire-drop hooks of the scalar
        # kernels; the batched kernel's fused delivery path has no
        # per-packet interception point, so fall back to the validated
        # byte-identical ``bucket`` kernel (docs/faults.md).
        from repro.sim.engine import Simulator

        if sim is None:
            sim = Simulator()
        if sim.kernel == "batch":
            import warnings

            warnings.warn(
                "fault injection is not supported on the 'batch' kernel; "
                "falling back to the bucket kernel for this cell",
                RuntimeWarning,
                stacklevel=3,
            )
            sim = Simulator(kernel="bucket")
    fabric: Fabric = build_fabric(
        config.topo(),
        scheme=scheme,
        params=params,
        seed=seed,
        collector=Collector(bin_ns=bin_ns),
        sim=sim,
        validate=validate,
        routing=routing,
        faults=faults,
    )
    sampler = None
    if telemetry is not None:
        from repro.metrics.trace import ProtocolTrace
        from repro.telemetry import TelemetrySampler

        trace = ProtocolTrace(limit=telemetry.events_limit).attach(fabric)
        sampler = TelemetrySampler(fabric, config=telemetry, trace=trace).start()
        fabric.telemetry = sampler
    attach_traffic(fabric, flows=flows, uniform=uniform)
    fabric.run(until=duration)
    c = fabric.collector
    result = CaseResult(
        scheme=scheme,
        duration=duration,
        throughput=c.throughput_series(duration),
        stats=fabric.stats(),
        window=window,
        telemetry=sampler.bundle(duration) if sampler is not None else None,
        routing=fabric.routing,
        faults=fabric.faults.snapshot() if fabric.faults is not None else None,
        buffer_model=fabric.buffer_model,
    )
    for spec in flows:
        result.flow_series[spec.name] = c.flow_series(spec.name, duration)
        result.flow_bandwidth[spec.name] = c.flow_bandwidth(spec.name, *window)
    return result


# ----------------------------------------------------------------------
# cell runners — one independent simulation each (keyword-only)
# ----------------------------------------------------------------------
def _cell_case1(
    *,
    scheme: str,
    time_scale: float,
    seed: int,
    params: Optional[CCParams],
    sim_factory=None,
    validate: Optional[bool] = None,
    telemetry=None,
    routing: str = "det",
    faults=None,
    buffer_model: Optional[str] = None,
) -> CaseResult:
    duration = 10 * MS * time_scale
    return _run(
        CONFIG1,
        scheme,
        case1_flows(time_scale=time_scale),
        [],
        duration,
        window=(0.8 * duration, duration),
        seed=seed,
        params=params,
        bin_ns=max(10_000.0, 100_000.0 * time_scale),
        sim_factory=sim_factory,
        validate=validate,
        telemetry=telemetry,
        routing=routing,
        faults=faults,
        buffer_model=buffer_model,
    )


def _cell_case2(
    *,
    scheme: str,
    time_scale: float,
    seed: int,
    params: Optional[CCParams],
    sim_factory=None,
    validate: Optional[bool] = None,
    telemetry=None,
    routing: str = "det",
    faults=None,
    buffer_model: Optional[str] = None,
) -> CaseResult:
    duration = 10 * MS * time_scale
    return _run(
        CONFIG2,
        scheme,
        case2_flows(time_scale=time_scale),
        [],
        duration,
        window=(0.8 * duration, duration),
        seed=seed,
        params=params,
        bin_ns=max(10_000.0, 100_000.0 * time_scale),
        sim_factory=sim_factory,
        validate=validate,
        telemetry=telemetry,
        routing=routing,
        faults=faults,
        buffer_model=buffer_model,
    )


def _cell_case3(
    *,
    scheme: str,
    time_scale: float,
    seed: int,
    params: Optional[CCParams],
    sim_factory=None,
    validate: Optional[bool] = None,
    telemetry=None,
    routing: str = "det",
    faults=None,
    buffer_model: Optional[str] = None,
) -> CaseResult:
    duration = 10 * MS * time_scale
    flows, uniform = case3_traffic(time_scale=time_scale)
    return _run(
        CONFIG2,
        scheme,
        flows,
        uniform,
        duration,
        window=(0.8 * duration, duration),
        seed=seed,
        params=params,
        bin_ns=max(10_000.0, 100_000.0 * time_scale),
        sim_factory=sim_factory,
        validate=validate,
        telemetry=telemetry,
        routing=routing,
        faults=faults,
        buffer_model=buffer_model,
    )


def _cell_case4(
    *,
    scheme: str,
    time_scale: float,
    seed: int,
    params: Optional[CCParams],
    num_trees: int = 1,
    duration_ms: float = 3.0,
    sim_factory=None,
    validate: Optional[bool] = None,
    telemetry=None,
    routing: str = "det",
    faults=None,
    buffer_model: Optional[str] = None,
) -> CaseResult:
    duration = duration_ms * MS * time_scale
    flows, uniform = case4_traffic(num_trees=num_trees, time_scale=time_scale)
    return _run(
        CONFIG3,
        scheme,
        flows,
        uniform,
        duration,
        window=(1.0 * MS * time_scale, 2.0 * MS * time_scale),
        seed=seed,
        params=params,
        bin_ns=max(20_000.0, 100_000.0 * time_scale),
        sim_factory=sim_factory,
        validate=validate,
        telemetry=telemetry,
        routing=routing,
        faults=faults,
        buffer_model=buffer_model,
    )


_CELLS = {
    "case1": _cell_case1,
    "case2": _cell_case2,
    "case3": _cell_case3,
    "case4": _cell_case4,
}

#: the valid ``case`` identifiers for :func:`run_case` / ``SimJob.case``.
CASE_NAMES = tuple(_CELLS)


def run_case(
    case: str,
    *,
    scheme: str,
    time_scale: Optional[float] = None,
    seed: Optional[int] = None,
    params: Optional[CCParams] = None,
    routing: Optional[str] = None,
    kernel: Optional[str] = None,
    faults=None,
    buffer_model: Optional[str] = None,
    options=None,
    **extra,
) -> CaseResult:
    """Run one simulation cell: ``case`` under ``scheme``.

    This is the unified, keyword-only entry point behind every
    ``run_case*`` wrapper and every sweep-engine job.  ``options`` may
    be a :class:`~repro.experiments.sweep.SweepOptions` supplying the
    defaults for ``time_scale``/``seed``/``params``/``routing``;
    explicit keywords win over it.  ``routing`` names a registered
    routing policy (``det``/``ecmp``/``adaptive``/``flowlet``, see
    docs/routing.md); the default ``det`` is the paper's deterministic
    routing and reproduces pre-policy results byte-for-byte.  ``extra`` carries per-case knobs (Case #4 accepts
    ``num_trees`` and ``duration_ms``) plus ``sim_factory`` — a
    zero-argument callable returning the
    :class:`repro.sim.engine.Simulator` to run on, which is how the
    kernel golden tests and the :mod:`repro.perf` harness pin
    ``kernel=``/``profile=``.  ``extra`` may also carry ``telemetry``
    — a :class:`repro.telemetry.TelemetryConfig` attaching the sampler
    (results stay byte-identical; the bundle rides on the result) —
    which otherwise defaults from ``options.telemetry``.

    ``kernel`` names a simulation kernel (``bucket``/``heap``/``batch``,
    resolved case-insensitively via
    :func:`repro.sim.engine.resolve_kernel`; unknown names raise
    ``ValueError`` with a did-you-mean hint).  ``None`` defers to the
    engine default / ``REPRO_SIM_KERNEL``.  Kernels are byte-identical,
    so this selects speed, never results.  An explicit ``sim_factory``
    wins over ``kernel``.

    ``faults`` is a :class:`repro.sim.faults.FaultPlan` (or a spec
    string for :meth:`FaultPlan.parse`) injecting deterministic link/
    switch failures; it defaults from ``options.faults``.  Plan times
    are expressed at ``time_scale=1.0`` and scaled automatically so a
    plan stays aligned with the traffic pattern at any scale.  Without
    a plan, results are byte-identical to a fault-free build
    (docs/faults.md).

    ``buffer_model`` names a registered buffer model (``static`` /
    ``shared``, docs/buffers.md); it defaults from
    ``options.buffer_model`` and overrides ``params.buffer_model`` when
    given.  ``None`` with default params runs the ``static`` golden
    reference, byte-identical to pre-buffer-model results.  Non-static
    models degrade from the ``batch`` kernel to ``bucket`` with a
    ``RuntimeWarning``, like fault plans do.
    """
    if case not in _CELLS:
        raise KeyError(f"unknown case {case!r}; choose from {sorted(_CELLS)}")
    if time_scale is None:
        time_scale = getattr(options, "time_scale", None) if options is not None else None
        time_scale = 1.0 if time_scale is None else time_scale
    if seed is None:
        seed = getattr(options, "seed", None) if options is not None else None
        seed = 1 if seed is None else seed
    if params is None and options is not None:
        params = getattr(options, "params", None)
    if routing is None:
        routing = getattr(options, "routing", None) if options is not None else None
        routing = "det" if routing is None else routing
    if faults is None and options is not None:
        faults = getattr(options, "faults", None)
    if buffer_model is None and options is not None:
        buffer_model = getattr(options, "buffer_model", None)
    if buffer_model is not None:
        extra["buffer_model"] = buffer_model
    if isinstance(faults, str):
        from repro.sim.faults import FaultPlan

        faults = FaultPlan.parse(faults)
    if faults is not None:
        if time_scale != 1.0:
            faults = faults.scaled(time_scale)
        extra["faults"] = faults
    if extra.get("telemetry") is None and options is not None:
        telemetry = getattr(options, "telemetry", None)
        if telemetry is not None:
            extra["telemetry"] = telemetry
    if kernel is None and options is not None:
        kernel = getattr(options, "kernel", None)
    if kernel is not None and extra.get("sim_factory") is None:
        from repro.sim.engine import Simulator, resolve_kernel

        resolved = resolve_kernel(kernel)
        extra["sim_factory"] = lambda: Simulator(kernel=resolved)
    return _CELLS[case](
        scheme=scheme, time_scale=time_scale, seed=seed, params=params, routing=routing, **extra
    )


# ----------------------------------------------------------------------
# legacy per-case wrappers (old positional call forms keep working)
# ----------------------------------------------------------------------
def _legacy(case: str, arg_order: Tuple[str, ...], args: tuple, kw: dict) -> CaseResult:
    if len(args) > len(arg_order):
        raise TypeError(f"run_{case}() takes at most {len(arg_order)} positional arguments")
    for name, value in zip(arg_order, args):
        if name in kw:
            raise TypeError(f"run_{case}() got multiple values for argument {name!r}")
        kw[name] = value
    return run_case(case, **kw)


def run_case1(*args, **kwargs) -> CaseResult:
    """Config #1, Traffic Case #1 (Figs. 7a and 9).

    Canonically keyword-only (``scheme=``, ``time_scale=``, ``seed=``,
    ``params=``, ``options=``); the legacy positional order
    ``(scheme, time_scale, seed, params)`` is still accepted.
    """
    return _legacy("case1", ("scheme", "time_scale", "seed", "params"), args, kwargs)


def run_case2(*args, **kwargs) -> CaseResult:
    """Config #2, Traffic Case #2 (Figs. 7b and 10)."""
    return _legacy("case2", ("scheme", "time_scale", "seed", "params"), args, kwargs)


def run_case3(*args, **kwargs) -> CaseResult:
    """Config #2, Traffic Case #3 = Case #2 plus uniform noise (Fig. 7c)."""
    return _legacy("case3", ("scheme", "time_scale", "seed", "params"), args, kwargs)


def run_case4(*args, **kwargs) -> CaseResult:
    """Config #3, Traffic Case #4: the Fig. 8 scalability probe.

    The hotspot burst occupies [1 ms, 2 ms] (scaled); the run extends
    to ``duration_ms`` (default 3.0) to observe the recovery.  The tail
    window for aggregates is the burst window itself (where the schemes
    differ).  Accepts ``num_trees`` (legacy second positional).
    """
    return _legacy(
        "case4",
        ("scheme", "num_trees", "time_scale", "seed", "params", "duration_ms"),
        args,
        kwargs,
    )


# ----------------------------------------------------------------------
# figure-level drivers — thin aggregation over the sweep engine
# ----------------------------------------------------------------------
def run_figure(
    name: str,
    *,
    schemes: Optional[Iterable[str]] = None,
    time_scale: Optional[float] = None,
    seed: Optional[int] = None,
    params: Optional[CCParams] = None,
    options=None,
) -> Dict[str, CaseResult]:
    """Run every (scheme) cell of one registered figure/case experiment.

    ``name`` is a :mod:`repro.experiments.registry` key (``"fig7a"``,
    ``"fig9"``, ``"case3"``, ...).  The grid goes through
    :func:`repro.experiments.sweep.run_sweep`, so an ``options`` object
    with ``jobs > 1`` fans the schemes out across worker processes and
    ``cache_dir`` memoizes the cells on disk; without options the run
    is serial and uncached, identical to the historical in-process
    loop.
    """
    from repro.experiments import registry  # deferred: registry imports sweep imports us

    exp = registry.get(name)
    results, _report = exp.run(
        schemes=tuple(schemes) if schemes is not None else None,
        options=options,
        time_scale=time_scale,
        seed=seed,
        params=params,
    )
    return results


def _legacy_figure(name: str, arg_order: Tuple[str, ...], args: tuple, kw: dict):
    if len(args) > len(arg_order):
        raise TypeError(f"figure driver takes at most {len(arg_order)} positional arguments")
    for pname, value in zip(arg_order, args):
        if pname in kw:
            raise TypeError(f"got multiple values for argument {pname!r}")
        kw[pname] = value
    return run_figure(name, **kw)


def run_fig7(panel: str, *args, **kwargs) -> Dict[str, CaseResult]:
    """Throughput-vs-time curves of Fig. 7 (panel 'a', 'b' or 'c')."""
    if panel not in ("a", "b", "c"):
        raise KeyError(f"Fig. 7 has panels a/b/c, not {panel!r}")
    return _legacy_figure(f"fig7{panel}", ("schemes", "time_scale", "seed"), args, kwargs)


def run_fig8(num_trees: int, *args, **kwargs) -> Dict[str, CaseResult]:
    """Fig. 8: Config #3 under 1 (a), 4 (b) or 6 (c) congestion trees."""
    panel = {1: "a", 4: "b", 6: "c"}.get(num_trees)
    if panel is not None:
        return _legacy_figure(f"fig8{panel}", ("schemes", "time_scale", "seed"), args, kwargs)
    # off-grid tree counts still run, straight through the engine
    from repro.experiments import registry

    for name, value in zip(("schemes", "time_scale", "seed"), args):
        kwargs[name] = value
    schemes = kwargs.pop("schemes", None)
    options = kwargs.pop("options", None)
    results, _report = registry.get("fig8a").run(
        schemes=tuple(schemes) if schemes is not None else None,
        options=options,
        num_trees=num_trees,
        **kwargs,
    )
    return results


def run_fig9(*args, **kwargs) -> Dict[str, CaseResult]:
    """Fig. 9: per-flow bandwidth on Config #1 / Case #1 (one panel per
    scheme; the paper shows 1Q/ITh/FBICM and discusses CCFIT)."""
    return _legacy_figure("fig9", ("schemes", "time_scale", "seed"), args, kwargs)


def run_fig10(*args, **kwargs) -> Dict[str, CaseResult]:
    """Fig. 10: per-flow bandwidth on Config #2 / Case #2."""
    return _legacy_figure("fig10", ("schemes", "time_scale", "seed"), args, kwargs)
