"""Figure runners: regenerate every curve of §IV.

Each ``run_*`` function builds the right fabric+workload, simulates,
and returns a :class:`CaseResult` per scheme carrying exactly what the
corresponding figure plots (network-throughput series for Fig. 7/8,
per-flow bandwidth series for Fig. 9/10) plus the aggregates the
shape tests and EXPERIMENTS.md assert on.

``time_scale`` shrinks the paper's 10 ms windows proportionally — the
benches run at 0.15–0.3x to stay fast; EXPERIMENTS.md records 1.0x
runs.  All runs are deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.params import CCParams
from repro.experiments.configs import CONFIG1, CONFIG2, CONFIG3
from repro.metrics.analysis import jain_index
from repro.network.fabric import Fabric, build_fabric
from repro.traffic.flows import attach_traffic
from repro.traffic.patterns import (
    MS,
    case1_flows,
    case2_flows,
    case3_traffic,
    case4_traffic,
)

__all__ = [
    "CaseResult",
    "run_case1",
    "run_case2",
    "run_case3",
    "run_case4",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "PAPER_SCHEMES",
    "FIG8_SCHEMES",
]

#: the schemes of Figs. 7, 9 and 10.
PAPER_SCHEMES = ("1Q", "ITh", "FBICM", "CCFIT")
#: Fig. 8 adds the VOQnet upper bound.
FIG8_SCHEMES = ("1Q", "ITh", "FBICM", "CCFIT", "VOQnet")


@dataclass
class CaseResult:
    """Everything one simulated scheme contributes to a figure."""

    scheme: str
    duration: float
    #: (bin mid-times ns, delivered GB/s).
    throughput: Tuple[np.ndarray, np.ndarray]
    #: flow name -> (times, GB/s) series.
    flow_series: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    #: flow name -> mean GB/s over the steady tail window.
    flow_bandwidth: Dict[str, float] = field(default_factory=dict)
    #: aggregate counters from Fabric.stats().
    stats: Dict[str, float] = field(default_factory=dict)
    #: the tail measurement window (ns).
    window: Tuple[float, float] = (0.0, 0.0)

    def mean_throughput(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        times, rates = self.throughput
        lo = self.window[0] if t0 is None else t0
        hi = self.window[1] if t1 is None else t1
        mask = (times >= lo) & (times < hi)
        return float(rates[mask].mean()) if mask.any() else 0.0

    def fairness(self, flows: Iterable[str]) -> float:
        return jain_index([self.flow_bandwidth.get(f, 0.0) for f in flows])


def _run(
    config,
    scheme: str,
    flows,
    uniform,
    duration: float,
    window: Tuple[float, float],
    seed: int,
    params: Optional[CCParams],
    bin_ns: float,
) -> CaseResult:
    from repro.metrics.collector import Collector

    fabric: Fabric = build_fabric(
        config.topo(),
        scheme=scheme,
        params=params,
        seed=seed,
        collector=Collector(bin_ns=bin_ns),
    )
    attach_traffic(fabric, flows=flows, uniform=uniform)
    fabric.run(until=duration)
    c = fabric.collector
    result = CaseResult(
        scheme=scheme,
        duration=duration,
        throughput=c.throughput_series(duration),
        stats=fabric.stats(),
        window=window,
    )
    for spec in flows:
        result.flow_series[spec.name] = c.flow_series(spec.name, duration)
        result.flow_bandwidth[spec.name] = c.flow_bandwidth(spec.name, *window)
    return result


def run_case1(
    scheme: str,
    time_scale: float = 1.0,
    seed: int = 1,
    params: Optional[CCParams] = None,
) -> CaseResult:
    """Config #1, Traffic Case #1 (Figs. 7a and 9)."""
    duration = 10 * MS * time_scale
    return _run(
        CONFIG1,
        scheme,
        case1_flows(time_scale=time_scale),
        [],
        duration,
        window=(0.8 * duration, duration),
        seed=seed,
        params=params,
        bin_ns=max(10_000.0, 100_000.0 * time_scale),
    )


def run_case2(
    scheme: str,
    time_scale: float = 1.0,
    seed: int = 1,
    params: Optional[CCParams] = None,
) -> CaseResult:
    """Config #2, Traffic Case #2 (Figs. 7b and 10)."""
    duration = 10 * MS * time_scale
    return _run(
        CONFIG2,
        scheme,
        case2_flows(time_scale=time_scale),
        [],
        duration,
        window=(0.8 * duration, duration),
        seed=seed,
        params=params,
        bin_ns=max(10_000.0, 100_000.0 * time_scale),
    )


def run_case3(
    scheme: str,
    time_scale: float = 1.0,
    seed: int = 1,
    params: Optional[CCParams] = None,
) -> CaseResult:
    """Config #2, Traffic Case #3 = Case #2 plus uniform noise (Fig. 7c)."""
    duration = 10 * MS * time_scale
    flows, uniform = case3_traffic(time_scale=time_scale)
    return _run(
        CONFIG2,
        scheme,
        flows,
        uniform,
        duration,
        window=(0.8 * duration, duration),
        seed=seed,
        params=params,
        bin_ns=max(10_000.0, 100_000.0 * time_scale),
    )


def run_case4(
    scheme: str,
    num_trees: int,
    time_scale: float = 1.0,
    seed: int = 1,
    params: Optional[CCParams] = None,
    duration_ms: float = 3.0,
) -> CaseResult:
    """Config #3, Traffic Case #4: the Fig. 8 scalability probe.

    The hotspot burst occupies [1 ms, 2 ms] (scaled); the run extends
    to ``duration_ms`` to observe the recovery.  The tail window for
    aggregates is the burst window itself (where the schemes differ).
    """
    duration = duration_ms * MS * time_scale
    flows, uniform = case4_traffic(num_trees=num_trees, time_scale=time_scale)
    return _run(
        CONFIG3,
        scheme,
        flows,
        uniform,
        duration,
        window=(1.0 * MS * time_scale, 2.0 * MS * time_scale),
        seed=seed,
        params=params,
        bin_ns=max(20_000.0, 100_000.0 * time_scale),
    )


# ----------------------------------------------------------------------
# figure-level drivers
# ----------------------------------------------------------------------
def run_fig7(
    panel: str,
    schemes: Iterable[str] = PAPER_SCHEMES,
    time_scale: float = 1.0,
    seed: int = 1,
) -> Dict[str, CaseResult]:
    """Throughput-vs-time curves of Fig. 7 (panel 'a', 'b' or 'c')."""
    runner = {"a": run_case1, "b": run_case2, "c": run_case3}[panel]
    return {s: runner(s, time_scale=time_scale, seed=seed) for s in schemes}


def run_fig8(
    num_trees: int,
    schemes: Iterable[str] = FIG8_SCHEMES,
    time_scale: float = 1.0,
    seed: int = 1,
) -> Dict[str, CaseResult]:
    """Fig. 8: Config #3 under 1 (a), 4 (b) or 6 (c) congestion trees."""
    return {
        s: run_case4(s, num_trees=num_trees, time_scale=time_scale, seed=seed)
        for s in schemes
    }


def run_fig9(
    schemes: Iterable[str] = PAPER_SCHEMES,
    time_scale: float = 1.0,
    seed: int = 1,
) -> Dict[str, CaseResult]:
    """Fig. 9: per-flow bandwidth on Config #1 / Case #1 (one panel per
    scheme; the paper shows 1Q/ITh/FBICM and discusses CCFIT)."""
    return {s: run_case1(s, time_scale=time_scale, seed=seed) for s in schemes}


def run_fig10(
    schemes: Iterable[str] = PAPER_SCHEMES,
    time_scale: float = 1.0,
    seed: int = 1,
) -> Dict[str, CaseResult]:
    """Fig. 10: per-flow bandwidth on Config #2 / Case #2."""
    return {s: run_case2(s, time_scale=time_scale, seed=seed) for s in schemes}
