"""ASCII rendering of experiment results.

The benchmark harness prints, for every figure, the same rows/series
the paper plots; EXPERIMENTS.md embeds these tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.experiments.runner import CaseResult

__all__ = [
    "render_table",
    "render_series",
    "render_flow_table",
    "render_fig8_summary",
    "render_routing_grid",
    "render_fault_matrix",
    "render_pfc_matrix",
]


def render_table(rows: List[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Generic list-of-dicts → aligned ASCII table."""
    if not rows:
        return "(empty)"
    cols = list(columns) if columns is not None else list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in cols}
    head = " | ".join(str(c).ljust(widths[c]) for c in cols)
    sep = "-+-".join("-" * widths[c] for c in cols)
    body = [
        " | ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols) for r in rows
    ]
    return "\n".join([head, sep, *body])


def render_series(
    results: Dict[str, CaseResult],
    stride: int = 1,
    label: str = "throughput (GB/s)",
) -> str:
    """Throughput-vs-time, one row per scheme (Figs. 7 and 8)."""
    lines = [f"-- {label}; columns are bin mid-times (ms) --"]
    first = next(iter(results.values()))
    times = first.throughput[0][::stride] / 1e6
    lines.append("t(ms)   " + " ".join(f"{t:6.2f}" for t in times))
    for scheme, res in results.items():
        rates = res.throughput[1][::stride]
        lines.append(f"{scheme:7s} " + " ".join(f"{r:6.1f}" for r in rates))
    return "\n".join(lines)


def render_flow_table(
    results: Dict[str, CaseResult], flows: Iterable[str]
) -> str:
    """Per-flow steady-window bandwidth, one row per scheme (Figs. 9/10)."""
    flows = list(flows)
    rows = []
    for scheme, res in results.items():
        row = {"scheme": scheme}
        for f in flows:
            row[f] = f"{res.flow_bandwidth.get(f, 0.0):.3f}"
        row["jain"] = f"{res.fairness(flows):.3f}"
        rows.append(row)
    return render_table(rows, columns=["scheme", *flows, "jain"])


def render_fig8_summary(results: Dict[str, CaseResult]) -> str:
    """Burst-window mean / post-burst recovery summary for Fig. 8."""
    rows = []
    for scheme, res in results.items():
        t0, t1 = res.window
        rows.append(
            {
                "scheme": scheme,
                "pre-burst": f"{res.mean_throughput(0.2 * t0, t0):.1f}",
                "burst": f"{res.mean_throughput(t0, t1):.1f}",
                "post-burst": f"{res.mean_throughput(t1, res.duration):.1f}",
                "cam_failures": int(res.stats.get("cfq_alloc_failures", 0)),
                "becns": int(res.stats.get("becns_received", 0)),
            }
        )
    return render_table(rows)


def render_routing_grid(results: Dict[str, CaseResult]) -> str:
    """Scheme x routing-policy matrix of burst-window mean throughput
    (GB/s) — the ``routing_grid`` experiment's table.

    ``results`` keys are ``"<scheme>"`` (det routing) or
    ``"<scheme>@<routing>"`` as produced by
    :meth:`repro.experiments.registry.Experiment.run`.
    """
    cells: Dict[str, Dict[str, CaseResult]] = {}
    routings: List[str] = []
    for key, res in results.items():
        scheme, _, routing = key.partition("@")
        routing = routing or res.routing
        cells.setdefault(scheme, {})[routing] = res
        if routing not in routings:
            routings.append(routing)
    rows = []
    for scheme, by_routing in cells.items():
        row: Dict[str, object] = {"scheme": scheme}
        for routing in routings:
            res = by_routing.get(routing)
            row[routing] = f"{res.mean_throughput():.1f}" if res is not None else "-"
        rows.append(row)
    header = "-- burst-window mean throughput (GB/s), scheme x routing --"
    return header + "\n" + render_table(rows, columns=["scheme", *routings])


def _recovery_us(res: CaseResult) -> str:
    """Time (us) from the first fault to the throughput series regaining
    90 % of its pre-fault level, or "never"/"-" when it doesn't / when
    the cell ran fault-free."""
    if res.faults is None:
        return "-"
    onsets = [
        rec["time"] for rec in res.faults.get("applied", ())
        if rec["action"] in ("down", "kill", "fail", "drain", "degrade")
    ]
    if not onsets:
        return "-"
    t_fault = min(onsets)
    times, rates = res.throughput
    pre = (times >= 0.5 * t_fault) & (times < t_fault)
    if not pre.any():
        return "-"
    target = 0.9 * float(rates[pre].mean())
    after = times >= t_fault
    recovered = after & (rates >= target)
    if not recovered.any():
        return "never"
    return f"{(float(times[recovered][0]) - t_fault) / 1e3:.0f}"


def render_fault_matrix(results: Dict[str, CaseResult]) -> str:
    """One row per (scheme, routing, fault scenario) cell — the
    ``fault_resilience`` experiment's table.

    ``results`` keys are ``"<scheme>[@<routing>]+<scenario>"`` as
    produced by :meth:`repro.experiments.registry.Experiment.run`.
    Columns: delivered fraction, burst-window mean throughput, mean
    hot-flow bandwidth (the congestion victims the fault compounds),
    fault drops split wire/source, and the 90 %-recovery time.
    """
    rows = []
    for key, res in results.items():
        base, _, scenario = key.partition("+")
        scheme, _, routing = base.partition("@")
        gen = res.stats.get("generated_packets", 0)
        delivered = res.stats.get("delivered_packets", 0) / gen if gen else 0.0
        hot = list(res.flow_bandwidth.values())
        snap = res.faults or {}
        rows.append(
            {
                "scheme": scheme,
                "routing": routing or res.routing,
                "fault": scenario or "none",
                "delivered": f"{delivered:.4f}",
                "burst": f"{res.mean_throughput():.1f}",
                "hot_bw": f"{sum(hot) / len(hot):.3f}" if hot else "-",
                "wire_drops": int(snap.get("wire_drops", 0)),
                "src_drops": int(snap.get("source_drops", 0)),
                "recovery_us": _recovery_us(res),
            }
        )
    header = "-- fault resilience: delivered fraction, drops, recovery --"
    return header + "\n" + render_table(rows)


def render_pfc_matrix(results: Dict[str, CaseResult]) -> str:
    """One row per (scheme, buffer model) cell — the
    ``datacenter_incast`` experiment's table.

    ``results`` keys are ``"<scheme>[%<buffer model>]"`` as produced by
    :meth:`repro.experiments.registry.Experiment.run` (no suffix =
    static).  Columns: burst-window mean throughput, mean hot-flow
    bandwidth (the victims PFC's congestion spreading starves), the
    PAUSE-storm counters from
    :meth:`repro.network.buffers.SharedBufferModel.stats`, and the
    shared-pool / headroom peaks — all "-" for static cells, whose
    per-port partitioning keeps no switch-wide state and never pauses.
    """
    rows = []
    for key, res in results.items():
        scheme, _, model = key.partition("%")
        pauses = res.stats.get("pfc_pauses_sent")
        hot = list(res.flow_bandwidth.values())
        rows.append(
            {
                "scheme": scheme,
                "buffers": model or res.buffer_model,
                "burst": f"{res.mean_throughput():.1f}",
                "hot_bw": f"{sum(hot) / len(hot):.3f}" if hot else "-",
                "pauses": int(pauses) if pauses is not None else "-",
                "resumes": (
                    int(res.stats["pfc_resumes_sent"])
                    if "pfc_resumes_sent" in res.stats else "-"
                ),
                "pool_peak": (
                    int(res.stats["shared_pool_peak"])
                    if "shared_pool_peak" in res.stats else "-"
                ),
                "headroom_peak": (
                    int(res.stats["pfc_headroom_peak"])
                    if "pfc_headroom_peak" in res.stats else "-"
                ),
            }
        )
    header = "-- datacenter incast: PAUSE storms and victim flows, scheme x buffers --"
    return header + "\n" + render_table(rows)


def series_checksum(results: Dict[str, CaseResult]) -> float:
    """A scalar the benchmark harness can assert on / track."""
    total = 0.0
    for res in results.values():
        total += float(np.sum(res.throughput[1]))
    return total
