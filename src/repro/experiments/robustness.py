"""Back-compat shim: this module moved to
:mod:`repro.experiments.seedcheck`.

The name ``robustness`` now refers to the execution-robustness layer
(fault-tolerant sweeps, cache integrity, the invariant guard — see
docs/robustness.md), so the multi-seed statistics helpers live under
``seedcheck``.  Importing from here keeps working.
"""

from repro.experiments.seedcheck import SweepStats, claim_holds, seed_sweep

__all__ = ["SweepStats", "seed_sweep", "claim_holds"]
