"""Table I — the evaluated interconnection network configurations.

===================  ================  =====================  ==============
                     Config #1         Config #2              Config #3
===================  ================  =====================  ==============
# Nodes              7                 8                      64
Topology             Ad-hoc (Fig. 5)   2-ary 3-tree (Fig. 6)  4-ary 3-tree
# Switches           2                 12                     48
Crossbar BW          5 GB/s            2.5 GB/s               2.5 GB/s
Switching            virtual cut-through (packet-grain, see DESIGN.md)
Scheduling           iSlip
Packet MTU           2048 B
Memory size          64 KiB / input port
Link bandwidth       2.5 & 5 GB/s      2.5 GB/s               2.5 GB/s
Flow control         credit-based
Routing              deterministic (DET) / table-based
===================  ================  =====================  ==============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.core.params import CCParams
from repro.network.topology import Topology, config1_adhoc, k_ary_n_tree

__all__ = ["NetworkConfig", "CONFIG1", "CONFIG2", "CONFIG3", "table1"]


@dataclass(frozen=True)
class NetworkConfig:
    """One column of Table I."""

    name: str
    build: Callable[[], Topology] = field(repr=False)
    num_nodes: int = 0
    num_switches: int = 0
    topology: str = ""
    crossbar_bw: float = 2.5
    link_bandwidths: tuple = (2.5,)
    mtu: int = 2048
    memory_size: int = 64 * 1024

    def topo(self) -> Topology:
        return self.build()

    def params(self, **overrides) -> CCParams:
        p = CCParams(mtu=self.mtu, memory_size=self.memory_size, **overrides)
        p.validate()
        return p

    def check(self) -> None:
        """Assert the built topology matches this Table I column."""
        topo = self.topo()
        assert topo.num_nodes == self.num_nodes, topo.num_nodes
        assert topo.num_switches == self.num_switches, topo.num_switches
        assert topo.effective_crossbar_bw() == self.crossbar_bw
        bws = {bw for (_s, _p, bw) in topo.node_attach.values()}
        bws |= {bw for (*_x, bw) in topo.switch_links}
        assert bws == set(self.link_bandwidths), bws
        topo.validate()


CONFIG1 = NetworkConfig(
    name="Config #1",
    build=config1_adhoc,
    num_nodes=7,
    num_switches=2,
    topology="Ad-hoc (Fig. 5)",
    crossbar_bw=5.0,
    link_bandwidths=(2.5, 5.0),
)

CONFIG2 = NetworkConfig(
    name="Config #2",
    build=lambda: k_ary_n_tree(2, 3),
    num_nodes=8,
    num_switches=12,
    topology="2-ary 3-tree (Fig. 6)",
    crossbar_bw=2.5,
    link_bandwidths=(2.5,),
)

CONFIG3 = NetworkConfig(
    name="Config #3",
    build=lambda: k_ary_n_tree(4, 3),
    num_nodes=64,
    num_switches=48,
    topology="4-ary 3-tree",
    crossbar_bw=2.5,
    link_bandwidths=(2.5,),
)


def table1() -> List[Dict[str, object]]:
    """Table I as rows (used by the bench that regenerates it)."""
    rows = []
    for cfg in (CONFIG1, CONFIG2, CONFIG3):
        rows.append(
            {
                "config": cfg.name,
                "nodes": cfg.num_nodes,
                "topology": cfg.topology,
                "switches": cfg.num_switches,
                "crossbar_bw_gbs": cfg.crossbar_bw,
                "link_bw_gbs": "/".join(str(b) for b in cfg.link_bandwidths),
                "mtu_bytes": cfg.mtu,
                "memory_bytes": cfg.memory_size,
                "switching": "virtual cut-through (packet grain)",
                "scheduling": "iSlip",
                "flow_control": "credit-based",
                # the paper's default; the CLI's --routing swaps in a
                # registered multipath policy (docs/routing.md)
                "routing": "deterministic (DET), table-based",
            }
        )
    return rows
