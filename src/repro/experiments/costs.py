"""Hardware-cost accounting for the evaluated schemes.

The paper's argument for CCFIT is partly economic: VOQnet "is actually
almost unfeasible" (per-port memory grows with the network), while
CCFIT needs one NFQ, two CFQs and a small CAM per port.  This module
computes, for any scheme and network configuration, the per-port and
total queue/memory/CAM budget — the quantities behind §IV-A's memory
discussion (e.g. VOQnet's 256 KiB ports on the 64-node network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.ccfit import SCHEMES
from repro.core.params import CCParams
from repro.network.topology import Topology

__all__ = ["SchemeCost", "scheme_cost", "cost_table"]


@dataclass(frozen=True)
class SchemeCost:
    """Per-input-port and fabric-wide hardware budget of one scheme."""

    scheme: str
    queues_per_port: int
    memory_per_port: int
    cam_lines_per_port: int
    #: output-port CAM lines (FBICM/CCFIT propagate through them).
    out_cam_lines_per_port: int
    total_ports: int
    total_memory: int

    @property
    def memory_per_port_kib(self) -> float:
        return self.memory_per_port / 1024

    @property
    def total_memory_mib(self) -> float:
        return self.total_memory / (1024 * 1024)


def scheme_cost(
    scheme: str, topo: Topology, params: Optional[CCParams] = None
) -> SchemeCost:
    """Compute the switch buffer/CAM budget of ``scheme`` on ``topo``.

    The budget comes from the spec's ``cost`` hook, so registered
    schemes (see :func:`repro.core.ccfit.register_scheme`) appear in
    the table automatically."""
    if scheme not in SCHEMES:
        raise KeyError(f"unknown scheme {scheme!r}")
    params = params if params is not None else CCParams()
    spec = SCHEMES[scheme]
    n = topo.num_nodes
    memory = spec.memory_override(params, n)

    max_radix = max(s.num_ports for s in topo.switches)
    queues, cam, out_cam = spec.cost(params, n, max_radix)

    total_ports = sum(s.num_ports for s in topo.switches)
    return SchemeCost(
        scheme=scheme,
        queues_per_port=queues,
        memory_per_port=memory,
        cam_lines_per_port=cam,
        out_cam_lines_per_port=out_cam,
        total_ports=total_ports,
        total_memory=memory * total_ports,
    )


def cost_table(
    topo: Topology, params: Optional[CCParams] = None
) -> List[Dict[str, object]]:
    """One row per scheme — the §IV-A memory-cost comparison."""
    rows = []
    for scheme in SCHEMES:
        c = scheme_cost(scheme, topo, params)
        rows.append(
            {
                "scheme": c.scheme,
                "queues/port": c.queues_per_port,
                "CAM lines/port": c.cam_lines_per_port or "-",
                "memory/port KiB": f"{c.memory_per_port_kib:.0f}",
                "fabric memory MiB": f"{c.total_memory_mib:.1f}",
            }
        )
    return rows
