"""Legacy shim so editable installs work without the `wheel` package
(this environment is offline); all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
